package history

import (
	"runtime"
	"testing"

	"repro/internal/core"
)

// streamChain interns a linear chain of n blocks after genesis.
func streamChain(rec *Recorder, n int) core.Chain {
	c := core.GenesisChain()
	for i := 1; i <= n; i++ {
		h := c.Head()
		b := core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)})
		rec.InternBlock(b)
		c = c.Append(b)
	}
	return c
}

type countingSink struct {
	ops, comm, faulty int
	lastID            int
}

func (s *countingSink) OpDone(op *Op)      { s.ops++; s.lastID = op.ID }
func (s *countingSink) CommDone(CommEvent) { s.comm++ }
func (s *countingSink) Faulty(int)         { s.faulty++ }

func TestSinkDeliveryOrderAndPending(t *testing.T) {
	rec := NewRecorder(2, nil)
	sink := &countingSink{}
	rec.SetSink(sink)
	c := streamChain(rec, 3)
	rec.MarkFaulty(1)
	for _, b := range c[1:] {
		rec.Append(0, b, true)
	}
	rec.ReadHead(0, c.Head())
	pend := rec.InvokeRead(0) // never responded
	rec.ReadHead(0, c.Head())

	if sink.ops != 5 {
		t.Errorf("sink saw %d completed ops, want 5", sink.ops)
	}
	if sink.faulty != 1 {
		t.Errorf("sink saw %d faulty marks, want 1", sink.faulty)
	}
	pending := rec.PendingOps()
	if len(pending) != 1 || pending[0].ID != pend.ID {
		t.Errorf("pending = %v, want exactly op %d", pending, pend.ID)
	}
	// Retention still on: snapshot has all 7 ops (5 complete + genesis-
	// free appends included + 1 pending read).
	if h := rec.Snapshot(); len(h.Ops) != 6 {
		t.Errorf("snapshot has %d ops, want 6", len(h.Ops))
	}
}

func TestSegmentSinkSealsAndAssemblesHistory(t *testing.T) {
	rec := NewRecorder(2, nil)
	var sealed []*Segment
	seg := NewSegmentSink(4, func(s *Segment) { sealed = append(sealed, s) })
	seg.Keep(true)
	rec.SetSink(seg)

	c := streamChain(rec, 5)
	rec.MarkFaulty(1)
	for _, b := range c[1:] {
		rec.Append(0, b, true)
	}
	for i := 0; i < 6; i++ {
		rec.ReadHead(0, c.Head())
	}
	seg.Seal()

	if seg.Ops() != 11 {
		t.Fatalf("sink streamed %d ops, want 11", seg.Ops())
	}
	if len(sealed) != seg.Sealed() || len(sealed) != 3 { // 4+4+3
		t.Fatalf("sealed %d segments (counter %d), want 3", len(sealed), seg.Sealed())
	}
	for i, s := range sealed {
		if s.Index != i {
			t.Errorf("segment %d has index %d", i, s.Index)
		}
	}

	// The compatibility path must equal the recorder's own snapshot.
	want := rec.Snapshot()
	got := seg.History(rec.Procs())
	if got == nil {
		t.Fatal("History() returned nil despite Keep(true)")
	}
	if len(got.Ops) != len(want.Ops) {
		t.Fatalf("assembled %d ops, want %d", len(got.Ops), len(want.Ops))
	}
	for i := range got.Ops {
		if got.Ops[i].ID != want.Ops[i].ID {
			t.Fatalf("op %d: assembled ID %d, snapshot ID %d", i, got.Ops[i].ID, want.Ops[i].ID)
		}
	}
	if got.IsCorrect(1) || !got.IsCorrect(0) {
		t.Errorf("assembled Correct wrong: %v", got.Correct)
	}
	if seg2 := NewSegmentSink(4, nil); seg2.History(2) != nil {
		t.Error("History() without Keep(true) must return nil")
	}
}

func TestDropModeSnapshotKeepsOnlyPending(t *testing.T) {
	rec := NewRecorder(1, nil)
	rec.SetSink(&countingSink{})
	rec.SetRetain(false)
	c := streamChain(rec, 2)
	rec.Append(0, c[1], true)
	rec.Append(0, c[2], true)
	rec.ReadHead(0, c.Head())
	pend := rec.InvokeAppend(0, core.NewBlock(c.Head().ID, c.Head().Height+1, 0, 9, nil))
	h := rec.Snapshot()
	if len(h.Ops) != 1 || h.Ops[0].ID != pend.ID {
		t.Fatalf("drop-mode snapshot = %v, want only pending op %d", h.Ops, pend.ID)
	}
}

// TestSegmentReleaseReclaimable is the satellite memory proof: in drop
// mode with a release-after-seal segment sink, the heap after GC is
// independent of how many operations streamed through — sealed
// segments (and their op records) really are reclaimed, and nothing
// (recorder, table memo, sink) retains their backing arrays.
func TestSegmentReleaseReclaimable(t *testing.T) {
	heapAfter := func(reads int) uint64 {
		rec := NewRecorder(1, nil)
		sink := &countingSink{}
		seg := NewSegmentSink(256, func(s *Segment) { sink.ops += len(s.Ops) })
		rec.SetSink(seg)
		rec.SetRetain(false)
		c := streamChain(rec, 8)
		for _, b := range c[1:] {
			rec.Append(0, b, true)
		}
		memo0 := rec.Table().MemoLen()
		for i := 0; i < reads; i++ {
			rec.ReadHead(0, c[1+i%8])
		}
		seg.Seal()
		if sink.ops != reads+8 {
			t.Fatalf("sink saw %d ops, want %d", sink.ops, reads+8)
		}
		// Interned reads must not have grown the table memo.
		if grown := rec.Table().MemoLen() - memo0; grown > 8 {
			t.Fatalf("table memo grew by %d chains over %d reads", grown, reads)
		}
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		runtime.KeepAlive(rec)
		return ms.HeapAlloc
	}
	small := heapAfter(2_000)
	big := heapAfter(200_000)
	// 100x the ops must not cost more than a small constant of heap.
	if big > small+512*1024 {
		t.Errorf("heap grew with stream length: %d B after 2k ops vs %d B after 200k", small, big)
	}
}

// TestStreamingSteadyStateAllocs pins the per-op allocation cost of the
// streaming path (drop mode, interned reads, segment sink): each read
// is one Op record plus bounded bookkeeping.
func TestStreamingSteadyStateAllocs(t *testing.T) {
	rec := NewRecorder(1, nil)
	seg := NewSegmentSink(1024, nil)
	rec.SetSink(seg)
	rec.SetRetain(false)
	c := streamChain(rec, 4)
	for _, b := range c[1:] {
		rec.Append(0, b, true)
	}
	head := c.Head()
	// Warm up segment/pending machinery.
	for i := 0; i < 4096; i++ {
		rec.ReadHead(0, head)
	}
	avg := testing.AllocsPerRun(2000, func() {
		rec.ReadHead(0, head)
	})
	// One *Op plus amortized map/slice growth; generous ceiling so the
	// bound survives runtime changes while still catching retention
	// regressions (retaining history would add ~1 alloc/op of slice
	// growth and fail the companion heap test instead).
	if avg > 4 {
		t.Errorf("streaming read costs %.1f allocs/op, want ≤ 4", avg)
	}
}
