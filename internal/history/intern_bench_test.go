package history

import (
	"testing"

	"repro/internal/core"
)

// BenchmarkRecordRead measures recording one read of a deep chain:
// the legacy copied-slice path (RespondRead materializes O(height))
// against the interned (head, length) handle (DESIGN.md ablation #7).
func BenchmarkRecordRead(b *testing.B) {
	chain := core.GenesisChain()
	for i := 1; i <= 2000; i++ {
		h := chain.Head()
		chain = chain.Append(core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	b.Run("copied", func(b *testing.B) {
		b.ReportAllocs()
		rec := NewRecorder(4, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// What replica.Read did before interning: materialize the
			// selected chain, then copy-record it.
			rec.Read(i%4, chain.Clone())
		}
	})
	b.Run("interned", func(b *testing.B) {
		b.ReportAllocs()
		rec := NewRecorder(4, nil)
		for _, blk := range chain {
			rec.InternBlock(blk)
		}
		head := chain.Head()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec.ReadHead(i%4, head)
		}
	})
}
