// Package trace records a structured, deterministically sampled log of
// scheduler events — sends, deliveries, timers, faults, crashes,
// shard epochs, merge-barrier stalls, consistency witnesses — keyed by
// virtual time. Sampling is decided by the event's scheduler sequence
// number (`seq % SampleEvery == 0`), never by wall time or retained
// volume, so the *set* of sampled events is identical across runs and
// shard counts; rare kinds (faults, crashes, epochs, stalls,
// witnesses) are always kept. Under the sharded scheduler, events from
// parallel workers are staged per shard and merged by seq at the
// engine's commit barrier, mirroring how message sends commit.
//
// Exports: Chrome trace-event JSON (load in Perfetto / chrome://tracing;
// per-shard lanes as processes, per-replica rows as threads, metric
// series as counter tracks) and JSON-lines for ad-hoc tooling.
package trace

import "sort"

// Kind classifies a trace event.
type Kind uint8

const (
	KSend    Kind = iota // a message entered the network (seq = scheduled delivery event)
	KDeliver             // a delivery executed at a replica
	KTimer               // a scheduled callback fired
	KFault               // an injected fault took effect (drop, partition loss, crashloss, defer)
	KCrash               // a crash window opened at a replica
	KRestart             // a crash window closed (replica restarted)
	KEpoch               // a sharded parallel batch began (one per merge epoch)
	KStall               // merge-barrier stall measurement for a batch (wall ns in Wall)
	KWitness             // the consistency monitor emitted a violation witness
)

var kindNames = [...]string{
	"send", "deliver", "timer", "fault", "crash", "restart", "epoch", "stall", "witness",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// KindFromString inverts Kind.String; ok is false for unknown names.
func KindFromString(s string) (Kind, bool) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), true
		}
	}
	return 0, false
}

// rare reports whether this kind bypasses sampling (always retained).
func (k Kind) rare() bool { return k >= KFault }

// Event is one trace record. VT is virtual time; Seq is the scheduler
// sequence number that makes sampling and merge order deterministic
// (for KWitness it is a monotone per-run witness index, for KEpoch and
// KStall the batch ordinal). Wall carries the only non-deterministic
// payload in the stream: wall-clock nanoseconds on KStall events.
type Event struct {
	VT     int64  `json:"vt"`
	Seq    int64  `json:"seq"`
	Kind   Kind   `json:"-"`
	Shard  int    `json:"shard"`
	P      int    `json:"p"`
	Detail string `json:"detail,omitempty"`
	Wall   int64  `json:"wall,omitempty"`
}

// Options configures a Tracer.
type Options struct {
	// SampleEvery keeps one in SampleEvery common events (send /
	// deliver / timer), selected by seq%SampleEvery == 0. ≤ 1 keeps
	// everything. Rare kinds are always kept.
	SampleEvery int64
	// Limit caps retained events; once reached, further events are
	// counted in Dropped() instead of stored. ≤ 0 means DefaultLimit.
	Limit int
}

// DefaultLimit bounds retained events when Options.Limit is unset.
const DefaultLimit = 1 << 20

// Tracer accumulates one run's trace. Emit is for serial scheduler
// context; EmitStaged is for sharded parallel workers (owner-shard
// slice, no synchronization needed), merged by Commit at the barrier.
type Tracer struct {
	sampleEvery int64
	limit       int
	events      []Event
	staged      [][]Event
	dropped     int64
	counts      [len(kindNames)]int64
	witnessSeq  int64
}

// New creates a Tracer.
func New(opts Options) *Tracer {
	if opts.SampleEvery < 1 {
		opts.SampleEvery = 1
	}
	if opts.Limit <= 0 {
		opts.Limit = DefaultLimit
	}
	return &Tracer{sampleEvery: opts.SampleEvery, limit: opts.Limit}
}

// SampleEvery reports the common-event sampling interval.
func (t *Tracer) SampleEvery() int64 { return t.sampleEvery }

// Sampled reports whether an event of this kind and scheduler seq is
// retained. The decision depends only on (kind, seq) — deterministic
// and shard-count-invariant.
func (t *Tracer) Sampled(kind Kind, seq int64) bool {
	return kind.rare() || seq%t.sampleEvery == 0
}

// Emit records an event from serial scheduler context. Call Sampled
// first on hot paths to skip constructing the Event.
func (t *Tracer) Emit(ev Event) {
	t.counts[ev.Kind]++
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// NextWitnessSeq returns a monotone index for KWitness events, which
// have no scheduler seq of their own. Witness emission order is
// deterministic (the monitor is fed in serial context in both serial
// and sharded runs), so the index is shard-count-invariant.
func (t *Tracer) NextWitnessSeq() int64 {
	t.witnessSeq++
	return t.witnessSeq
}

// SetShards sizes the per-shard staging areas (sharded runs only).
func (t *Tracer) SetShards(k int) {
	t.staged = make([][]Event, k)
}

// EmitStaged records an event from parallel worker context into the
// owner shard's staging slice. Only the owning worker touches it.
func (t *Tracer) EmitStaged(shard int, ev Event) {
	t.staged[shard] = append(t.staged[shard], ev)
}

// Commit merges all staged events into the main stream in ascending
// Seq order (each shard's slice is already seq-ascending, so this is a
// k-way merge) and clears the staging areas. Call at the merge barrier.
func (t *Tracer) Commit() {
	for {
		best := -1
		for s := range t.staged {
			if len(t.staged[s]) == 0 {
				continue
			}
			if best < 0 || t.staged[s][0].Seq < t.staged[best][0].Seq {
				best = s
			}
		}
		if best < 0 {
			break
		}
		t.Emit(t.staged[best][0])
		t.staged[best] = t.staged[best][1:]
	}
	for s := range t.staged {
		t.staged[s] = t.staged[s][:0]
	}
}

// Events returns the retained events in canonical (VT, Seq, Kind)
// order. Sorting at read time gives serial and sharded runs the same
// stream order for the same retained set.
func (t *Tracer) Events() []Event {
	evs := t.events
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].VT != evs[j].VT {
			return evs[i].VT < evs[j].VT
		}
		if evs[i].Seq != evs[j].Seq {
			return evs[i].Seq < evs[j].Seq
		}
		return evs[i].Kind < evs[j].Kind
	})
	return evs
}

// Dropped reports events discarded after Limit was reached.
func (t *Tracer) Dropped() int64 { return t.dropped }

// Count reports how many events of the kind were emitted (including
// any dropped past the limit).
func (t *Tracer) Count(k Kind) int64 { return t.counts[k] }
