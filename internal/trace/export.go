package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/metrics"
)

// jsonlEvent is the JSON-lines wire form of an Event (Kind as string).
type jsonlEvent struct {
	VT     int64  `json:"vt"`
	Seq    int64  `json:"seq"`
	Kind   string `json:"kind"`
	Shard  int    `json:"shard"`
	P      int    `json:"p"`
	Detail string `json:"detail,omitempty"`
	Wall   int64  `json:"wall,omitempty"`
}

// WriteJSONL writes one JSON object per event, in canonical order.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		je := jsonlEvent{ev.VT, ev.Seq, ev.Kind.String(), ev.Shard, ev.P, ev.Detail, ev.Wall}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseJSONL reads a JSON-lines stream back into events (inverse of
// WriteJSONL; used by cmd/trace -lanes and the validator).
func ParseJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var je jsonlEvent
		if err := dec.Decode(&je); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		k, ok := KindFromString(je.Kind)
		if !ok {
			return nil, fmt.Errorf("trace: unknown kind %q", je.Kind)
		}
		out = append(out, Event{je.VT, je.Seq, k, je.Shard, je.P, je.Detail, je.Wall})
	}
}

// chromeEvent is one entry in the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Timestamps are microseconds; we map one virtual-time unit to one µs.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the events (plus, if snap is non-nil, its sampled
// metric series as counter tracks) as a Chrome trace-event JSON file
// loadable in Perfetto or chrome://tracing. Lanes: pid 0 is the serial
// scheduler, pid s+1 is shard s; tid is the replica ID.
func WriteChrome(w io.Writer, events []Event, snap *metrics.Snapshot) error {
	f := chromeFile{DisplayTimeUnit: "ms"}
	procs := map[int]string{0: "scheduler"}
	for _, ev := range events {
		pid := 0
		if ev.Kind == KDeliver || ev.Kind == KEpoch || ev.Kind == KStall {
			pid = ev.Shard + 1
		}
		if _, ok := procs[pid]; !ok {
			procs[pid] = fmt.Sprintf("shard %d", pid-1)
		}
		ce := chromeEvent{Ts: ev.VT, Pid: pid, Tid: ev.P}
		switch ev.Kind {
		case KSend, KDeliver, KTimer:
			ce.Name = ev.Kind.String()
			if ev.Detail != "" {
				ce.Name += " " + ev.Detail
			}
			ce.Ph = "X"
			ce.Dur = 1
		case KStall:
			ce.Name = "merge-stall"
			ce.Ph = "X"
			ce.Dur = 1
			ce.Args = map[string]any{"wallNs": ev.Wall, "batch": ev.Seq}
		default:
			ce.Name = ev.Kind.String()
			if ev.Detail != "" {
				ce.Name += " " + ev.Detail
			}
			ce.Ph = "i"
			ce.Scope = "g"
		}
		f.TraceEvents = append(f.TraceEvents, ce)
	}
	for pid, name := range procs {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	if snap != nil {
		for _, row := range snap.Series.Rows {
			for i, col := range snap.Series.Cols {
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: col, Ph: "C", Ts: row.VT, Pid: 0,
					Args: map[string]any{col: row.Vals[i]},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
