package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/metrics"
)

func TestSamplingDeterministic(t *testing.T) {
	tr := New(Options{SampleEvery: 4})
	for seq := int64(0); seq < 20; seq++ {
		want := seq%4 == 0
		if got := tr.Sampled(KDeliver, seq); got != want {
			t.Fatalf("Sampled(deliver, %d) = %v", seq, got)
		}
		if !tr.Sampled(KFault, seq) || !tr.Sampled(KWitness, seq) {
			t.Fatalf("rare kind sampled out at seq %d", seq)
		}
	}
}

func TestStagedCommitMergesBySeq(t *testing.T) {
	tr := New(Options{})
	tr.SetShards(3)
	tr.EmitStaged(0, Event{VT: 5, Seq: 2, Kind: KDeliver, Shard: 0})
	tr.EmitStaged(0, Event{VT: 5, Seq: 9, Kind: KDeliver, Shard: 0})
	tr.EmitStaged(2, Event{VT: 5, Seq: 4, Kind: KDeliver, Shard: 2})
	tr.EmitStaged(1, Event{VT: 5, Seq: 7, Kind: KDeliver, Shard: 1})
	tr.Commit()
	evs := tr.Events()
	got := []int64{evs[0].Seq, evs[1].Seq, evs[2].Seq, evs[3].Seq}
	for i, w := range []int64{2, 4, 7, 9} {
		if got[i] != w {
			t.Fatalf("merge order = %v", got)
		}
	}
	if tr.Count(KDeliver) != 4 {
		t.Fatalf("count = %d", tr.Count(KDeliver))
	}
}

func TestLimitDrops(t *testing.T) {
	tr := New(Options{Limit: 2})
	for i := 0; i < 5; i++ {
		tr.Emit(Event{Seq: int64(i), Kind: KTimer})
	}
	if len(tr.Events()) != 2 || tr.Dropped() != 3 {
		t.Fatalf("events=%d dropped=%d", len(tr.Events()), tr.Dropped())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	evs := []Event{
		{VT: 1, Seq: 3, Kind: KSend, P: 2, Detail: "0->2"},
		{VT: 4, Seq: 8, Kind: KCrash, P: 1, Detail: "window"},
		{VT: 9, Seq: 1, Kind: KStall, Shard: 2, Wall: 1234},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, evs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[0] != evs[0] || back[1] != evs[1] || back[2] != evs[2] {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestChromeTraceParses(t *testing.T) {
	reg := metrics.New(5)
	d := int64(3)
	reg.Probe("depth", func() int64 { return d })
	reg.Tick(5)
	tr := New(Options{})
	tr.Emit(Event{VT: 1, Seq: 0, Kind: KDeliver, Shard: 1, P: 2})
	tr.Emit(Event{VT: 2, Seq: 1, Kind: KFault, P: 0, Detail: "drop"})
	tr.Emit(Event{VT: 3, Seq: 0, Kind: KStall, Shard: 0, Wall: 99})
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr.Events(), reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var phases = map[string]int{}
	for _, e := range f.TraceEvents {
		phases[e["ph"].(string)]++
	}
	if phases["X"] < 2 || phases["i"] < 1 || phases["M"] < 1 || phases["C"] < 1 {
		t.Fatalf("phase mix = %v", phases)
	}
}

func TestCanonicalOrder(t *testing.T) {
	tr := New(Options{})
	tr.Emit(Event{VT: 5, Seq: 1, Kind: KFault})
	tr.Emit(Event{VT: 5, Seq: 1, Kind: KDeliver})
	tr.Emit(Event{VT: 2, Seq: 9, Kind: KTimer})
	evs := tr.Events()
	if evs[0].VT != 2 || evs[1].Kind != KDeliver || evs[2].Kind != KFault {
		t.Fatalf("order = %+v", evs)
	}
}
