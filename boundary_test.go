package repro

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesStayOutsideInternal enforces the public-API boundary: no
// package under examples/ may import repro/internal/... directly —
// examples are written against repro/btsim, which is what an external
// consumer of the module can use. (Transitive dependencies via btsim
// are fine; the check is on the examples' own import lists.)
func TestExamplesStayOutsideInternal(t *testing.T) {
	out, err := exec.Command("go", "list", "-json=ImportPath,Imports", "./examples/...").Output()
	if err != nil {
		var stderr []byte
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = ee.Stderr
		}
		t.Fatalf("go list ./examples/...: %v\n%s", err, stderr)
	}

	type pkg struct {
		ImportPath string
		Imports    []string
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	checked := 0
	for dec.More() {
		var p pkg
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		checked++
		for _, imp := range p.Imports {
			if strings.HasPrefix(imp, "repro/internal") {
				t.Errorf("%s imports %s — examples must use the public repro/btsim API", p.ImportPath, imp)
			}
		}
	}
	if checked < 5 {
		t.Fatalf("only %d example packages found, want ≥ 5 (did the examples move?)", checked)
	}
}
