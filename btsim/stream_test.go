package btsim_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
	"repro/internal/consistency"
)

// verdictText flattens a verdict for equality checks: OK flags, failing
// property names, Checked counts, every violation string and witness.
func verdictText(v *consistency.Verdict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s ok=%v failing=%v\n", v.Criterion, v.OK, v.Failing())
	for _, rep := range v.Reports {
		fmt.Fprintf(&b, "%s ok=%v checked=%d\n", rep.Property, rep.OK, rep.Checked)
		for _, viol := range rep.Violations {
			fmt.Fprintf(&b, "V %s\n", viol)
		}
		for _, w := range rep.Witnesses {
			fmt.Fprintf(&b, "W %s |", w.Detail)
			for _, op := range w.Ops {
				fmt.Fprintf(&b, " %s", op)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

func reportText(rep *consistency.Report) string {
	if rep == nil {
		return "<nil>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s ok=%v checked=%d viol=%v\n", rep.Property, rep.OK, rep.Checked, rep.Violations)
	return b.String()
}

// TestMonitorMatchesBatchAcrossSystems runs every registered system in
// tee mode (monitor attached, history retained) and requires the
// streaming verdicts to equal batch Check() exactly — including an
// adversarial bitcoin run that actually violates properties.
func TestMonitorMatchesBatchAcrossSystems(t *testing.T) {
	type run struct {
		name string
		opts []btsim.Option
	}
	runs := []run{}
	for _, sys := range btsim.Systems() {
		runs = append(runs, run{sys.Name(), []btsim.Option{
			btsim.WithN(4), btsim.WithRounds(30), btsim.WithSeed(11),
		}})
	}
	runs = append(runs, run{"bitcoin", []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(60), btsim.WithSeed(7),
		btsim.WithMerits(1, 1, 1, 2),
		btsim.WithAdversary(btsim.Adversary{Strategy: btsim.Equivocate, Forks: 2}),
	}})
	runs = append(runs, run{"ethereum", []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(50), btsim.WithSeed(3),
		btsim.WithFaults(btsim.Fault{Start: 40, End: btsim.NoHeal, Left: []int{0, 1}}),
	}})

	for _, r := range runs {
		opts := append(r.opts, btsim.WithMonitor(nil), btsim.WithMonitorK(1))
		res, err := btsim.Run(r.name, opts...)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if res.Stream == nil {
			t.Fatalf("%s: no StreamOutcome despite WithMonitor", r.name)
		}
		bsc, bec := res.Check()
		if got, want := verdictText(res.Stream.SC), verdictText(bsc); got != want {
			t.Errorf("%s: SC stream != batch:\n--- batch ---\n%s--- stream ---\n%s", r.name, want, got)
		}
		if got, want := verdictText(res.Stream.EC), verdictText(bec); got != want {
			t.Errorf("%s: EC stream != batch:\n--- batch ---\n%s--- stream ---\n%s", r.name, want, got)
		}
		if got, want := reportText(res.Stream.KFork), reportText(res.KFork(1)); got != want {
			t.Errorf("%s: KFork stream != batch:\n--- batch ---\n%s--- stream ---\n%s", r.name, want, got)
		}
		if res.Stream.Ops == 0 {
			t.Errorf("%s: monitor consumed no ops", r.name)
		}
	}
}

// TestStreamingModeMatchesTeeMode runs the same configuration twice —
// bounded-memory streaming vs. monitor-with-history — and requires
// identical verdicts, while the streaming run's Result.History must not
// have retained the run.
func TestStreamingModeMatchesTeeMode(t *testing.T) {
	base := []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(60), btsim.WithSeed(5),
		btsim.WithMerits(1, 1, 1, 2),
		btsim.WithAdversary(btsim.Adversary{Strategy: btsim.Selfish, Lead: 2}),
	}
	tee, err := btsim.Run("bitcoin", append(base[:len(base):len(base)], btsim.WithMonitor(nil))...)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := btsim.Run("bitcoin", append(base[:len(base):len(base)], btsim.WithStreaming(128))...)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := verdictText(stream.Stream.SC), verdictText(tee.Stream.SC); got != want {
		t.Errorf("streaming SC != tee SC:\n--- tee ---\n%s--- streaming ---\n%s", want, got)
	}
	if got, want := verdictText(stream.Stream.EC), verdictText(tee.Stream.EC); got != want {
		t.Errorf("streaming EC != tee EC:\n--- tee ---\n%s--- streaming ---\n%s", want, got)
	}
	if stream.Stream.Segments == 0 {
		t.Error("streaming run sealed no segments")
	}
	if len(stream.History.Ops) >= len(tee.History.Ops) {
		t.Errorf("streaming run retained the history: %d ops (tee run: %d)",
			len(stream.History.Ops), len(tee.History.Ops))
	}
}

// TestStreamingCheckpointCycles pins checkpoint cycling in
// bounded-memory mode: with WithStreaming + WithMonitorCheckpoint the
// monitor is serialized and restored at segment boundaries, and the
// finalized verdicts still match an uncycled streaming run exactly —
// restart-safe online checking without retained history.
func TestStreamingCheckpointCycles(t *testing.T) {
	base := []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(60), btsim.WithSeed(5),
		btsim.WithMerits(1, 1, 1, 2),
		btsim.WithAdversary(btsim.Adversary{Strategy: btsim.Selfish, Lead: 2}),
		btsim.WithStreaming(8),
	}
	plain, err := btsim.Run("bitcoin", base[:len(base):len(base)]...)
	if err != nil {
		t.Fatal(err)
	}
	cycled, err := btsim.Run("bitcoin", append(base[:len(base):len(base)], btsim.WithMonitorCheckpoint(10))...)
	if err != nil {
		t.Fatal(err)
	}
	so := cycled.Stream
	if so.CheckpointErr != nil {
		t.Fatalf("checkpoint cycle failed: %v", so.CheckpointErr)
	}
	if so.Checkpoints == 0 {
		t.Fatalf("run consumed %d ops but never cycled", so.Ops)
	}
	if got, want := verdictText(so.SC), verdictText(plain.Stream.SC); got != want {
		t.Errorf("cycled SC != plain SC:\n--- plain ---\n%s--- cycled ---\n%s", want, got)
	}
	if got, want := verdictText(so.EC), verdictText(plain.Stream.EC); got != want {
		t.Errorf("cycled EC != plain EC:\n--- plain ---\n%s--- cycled ---\n%s", want, got)
	}
}

// TestObserverSeesLiveWitnesses checks the live channel: the observer's
// Progress carries a growing witness count during a violating run, and
// OnWitness receives the structured witnesses themselves.
func TestObserverSeesLiveWitnesses(t *testing.T) {
	var fromCallback []consistency.Witness
	maxSeen := 0
	res, err := btsim.Run("bitcoin",
		btsim.WithN(4), btsim.WithRounds(80), btsim.WithSeed(7),
		btsim.WithMerits(1, 1, 1, 2),
		btsim.WithAdversary(btsim.Adversary{Strategy: btsim.Equivocate, Forks: 2}),
		btsim.WithMonitor(func(w consistency.Witness) { fromCallback = append(fromCallback, w) }),
		btsim.WithMonitorK(1),
		btsim.WithObserver(func(p btsim.Progress) bool {
			if p.LiveWitnesses > maxSeen {
				maxSeen = p.LiveWitnesses
			}
			return true
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCallback) == 0 {
		t.Fatal("equivocation run emitted no live witnesses")
	}
	if maxSeen == 0 {
		t.Error("observer never saw a nonzero LiveWitnesses count")
	}
	if res.Stream.LiveCount != len(fromCallback) {
		t.Errorf("LiveCount=%d but callback saw %d", res.Stream.LiveCount, len(fromCallback))
	}
	for _, w := range fromCallback {
		if w.Property == "" || w.Detail == "" {
			t.Errorf("malformed live witness: %+v", w)
		}
	}
}
