package btsim

import (
	"fmt"
	"io"
	"time"

	"repro/internal/adversary"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
	"repro/internal/protocols"
	"repro/internal/simnet"
	"repro/internal/tape"
	"repro/internal/transport"
)

// NoHeal, as a Fault.End value, makes the cut permanent: messages
// crossing it are lost instead of deferred (mirrors simnet.NoHeal).
const NoHeal int64 = -1

// The process-level adversarial strategies (Adversary.Strategy). The
// empty string is benign.
const (
	// Selfish is withhold-and-release selfish mining: mine privately,
	// publish when the honest chain gets within Lead of the private tip.
	Selfish = "selfish"
	// Withhold is pure block withholding: mine privately, publish only
	// at the end of the run — the maximal-reorg variant of Selfish.
	Withhold = "withhold"
	// Equivocate is fork flooding: every block the adversary produces
	// is accompanied by forged siblings reusing the same oracle token.
	Equivocate = "equivocate"
)

// Adversary declares a process-level adversarial strategy for a run.
// The zero value is benign. Systems that support adversaries wire it
// (the PoW miners and fabric's orderer); the others ignore it.
type Adversary struct {
	// Strategy is one of Selfish, Withhold, Equivocate or "" (benign).
	Strategy string
	// Proc is the adversarial process id; 0 or out of range means the
	// last process. Systems with a distinguished role (fabric's
	// orderer) pin the id themselves.
	Proc int
	// Lead is the selfish-mining release threshold (0 means 1).
	Lead int
	// Forks is the equivocation width (0 means 2).
	Forks int
	// ReleaseAtEnd flushes a still-withheld private chain after the
	// last round, before the final read batch.
	ReleaseAtEnd bool
}

// Fault declares one network partition window without committing to a
// process count; it is resolved against the run's N at start time.
type Fault struct {
	// Kind is "split" (Left vs. the rest; the default) or "eclipse"
	// (Left[0] cut off alone).
	Kind string
	// Start and End bound the window; End == NoHeal makes the cut
	// permanent (cross-cut messages are lost, not deferred).
	Start, End int64
	// Left is the cut-off side: the split's side-0 members, or the
	// eclipse victim as Left[0].
	Left []int
}

// window resolves the fault for an n-process run.
func (f Fault) window(n int) simnet.Window {
	switch f.Kind {
	case "eclipse":
		victim := 0
		if len(f.Left) > 0 {
			victim = f.Left[0]
		}
		return simnet.EclipseWindow(f.Start, f.End, n, victim)
	default:
		return simnet.SplitWindow(f.Start, f.End, n, f.Left)
	}
}

// String renders e.g. "split[0 1][50,200)" or "eclipse[2][100,∞)".
func (f Fault) String() string {
	end := fmt.Sprint(f.End)
	if f.End == NoHeal {
		end = "∞"
	}
	kind := f.Kind
	if kind == "" {
		kind = "split"
	}
	return fmt.Sprintf("%s%v[%d,%s)", kind, f.Left, f.Start, end)
}

// Crash declares one crash window: process Proc is down during
// [Start, End). While down it neither mines, reads nor receives —
// deliveries to it are lost, not deferred. End == NoHeal makes the
// crash permanent (crash-stop); otherwise the process restarts at End
// and catches up through the anti-entropy layer, restoring its durable
// snapshot first when WithDurability(true) is set.
type Crash struct {
	Proc       int
	Start, End int64
}

// String renders e.g. "crash[2][30,60)" or "crash[1][40,∞)".
func (cw Crash) String() string {
	end := fmt.Sprint(cw.End)
	if cw.End == NoHeal {
		end = "∞"
	}
	return fmt.Sprintf("crash[%d][%d,%s)", cw.Proc, cw.Start, end)
}

// Drop declares deterministic message loss: the Nth message (0-based)
// addressed to process To is dropped; To < 0 matches every message.
// This is the paper's Theorem 4.6/4.7 instrument — even a single lost
// update message breaks Eventual Prefix.
type Drop struct {
	Nth, To int
}

// Progress is what a WithObserver callback sees once per protocol
// round, before the round's block production.
type Progress struct {
	// System is the registered system name.
	System string
	// Round is the current protocol round (tick / height); Rounds is
	// the effective total (the default is substituted when the run
	// was configured with 0), so p.Round/p.Rounds is always sound.
	Round, Rounds int
	// Now is the simulator's virtual time.
	Now int64
	// VirtualTime is the simulator's virtual time — the same value as
	// Now under its canonical name, matching Result.Metrics series
	// timestamps and trace event times.
	VirtualTime int64
	// LiveWitnesses counts the violation witnesses the run's online
	// monitor has emitted so far (0 when no monitor is attached) — the
	// live-verdict feed of WithMonitor/WithStreaming runs.
	LiveWitnesses int
}

// Config is the uniform knob set every registered system runs under,
// normally assembled through the With* functional options. Knobs a
// system has no use for are ignored (difficulty on a BFT chain, say);
// the conformance suite pins which knobs are observable where.
type Config struct {
	// N is the number of processes (0 means 4).
	N int
	// Rounds is the number of protocol rounds — ticks or heights
	// (0 means 50).
	Rounds int
	// Seed drives all randomness; identical (system, Config) pairs
	// replay identical runs.
	Seed uint64
	// ReadEvery schedules a read() at every process each ReadEvery
	// virtual-time units (0 means 10).
	ReadEvery int64
	// Delta is the synchronous network delay bound δ (0 = the
	// system's default).
	Delta int64
	// Difficulty is the PoW difficulty knob of the prodigal-oracle
	// miners (0 = the system's default).
	Difficulty float64
	// Merits are the per-process α_p values — hashing power or stake,
	// normalized by the run so Σ α_p = 1. Nil means uniform.
	Merits []float64
	// Faults are network-level partition/eclipse windows. Churn is a
	// special case: a process leaving and rejoining is exactly an
	// eclipse window that heals.
	Faults []Fault
	// Adversary is the process-level strategy (zero value = benign).
	Adversary Adversary
	// Crashes are the run's crash–recovery windows (systems built on
	// the replica flooding layer wire them; others ignore them).
	Crashes []Crash
	// Durable selects snapshot/restore recovery for crashed processes;
	// false means amnesia (rejoin from genesis).
	Durable bool
	// Drop optionally injects deterministic message loss (PoW systems).
	Drop *Drop
	// Observer, when set, is called once per protocol round; returning
	// false stops block production early (the run still drains in-flight
	// messages and takes its final reads).
	Observer func(Progress) bool
	// FaultLog forces the network fault-event log on even for benign
	// runs (it is implied whenever Faults or an Adversary is set).
	FaultLog bool
	// Monitor attaches an online consistency monitor to the run
	// (history still retained; Result.Stream carries the streaming
	// verdicts next to the batch ones). See WithMonitor.
	Monitor bool
	// MonitorK, when > 0, additionally tracks k-Fork Coherence online,
	// with live witnesses at the (k+1)-th token reuse. Implies Monitor.
	MonitorK int
	// MonitorCheckpoint, when > 0, checkpoint-cycles the online monitor
	// roughly every MonitorCheckpoint consumed operations: the monitor
	// serializes its bounded retained state, a fresh monitor is
	// restored from the bytes, and the run continues on the restored
	// one. The cycles are specified to be invisible — the finalized
	// verdicts are byte-identical to an uninterrupted monitor's — which
	// is the restart-safety claim of the crash–recovery model, and the
	// catalogue test pins it on every scenario. Implies Monitor.
	MonitorCheckpoint int
	// OnWitness receives each violation witness the moment it forms
	// (requires Monitor). It is called from inside the recording path:
	// keep it fast and do not call back into the run.
	OnWitness func(consistency.Witness)
	// Streaming switches the run to bounded-memory recording: history
	// is streamed through sealed segments into the monitor and
	// released, never retained. Result.History then holds only the
	// still-pending operations — Result.Stream is the verdict. Implies
	// Monitor. See WithStreaming.
	Streaming bool
	// StreamSegment is the streaming segment size in operations
	// (0 means history.DefaultSegmentSize).
	StreamSegment int
	// Shards runs the simulation on a sharded deterministic scheduler
	// with that many worker shards; 0 or 1 is the serial scheduler.
	// Sharding is purely a wall-clock knob: any shard count is
	// specified to produce byte-identical histories, fault logs and
	// digests. See WithShards.
	Shards int
	// Metrics attaches the deterministic metrics layer: every layer of
	// the run registers zero-alloc counters and virtual-time-sampled
	// gauges, and Result.Metrics carries the typed snapshot. Attaching
	// metrics is specified to leave the run's digest byte-identical,
	// and the snapshot itself is identical across shard counts. See
	// WithMetrics.
	Metrics bool
	// MetricsEvery is the virtual-time sampling interval of the gauge
	// series (0 means metrics.DefaultSampleEvery). Implies Metrics.
	MetricsEvery int64
	// TraceW, when set, receives the run's structured scheduler trace
	// after the run — Chrome trace-event JSON by default (Perfetto /
	// chrome://tracing loadable), JSON-lines with TraceOpts.JSONL.
	// Implies Metrics. See WithTrace.
	TraceW io.Writer
	// TraceOpts tunes the trace (sampling, retention cap, format).
	TraceOpts TraceOptions
	// Live switches the run from a deterministic simulation to a real
	// concurrent deployment: N nodes hosting the system's replicas over
	// a live carrier, wall-clock timers, concurrent client load, and an
	// online consistency monitor attached over the totally ordered op
	// feed. The run is NOT deterministic (no replay digest pinning);
	// Result.Live carries the measured throughput, latency quantiles
	// and finalized online verdicts. See WithLive.
	Live bool
	// LiveTransport names the live carrier: "chan" (in-process,
	// default) or "tcp" (length-prefixed frames over loopback TCP).
	LiveTransport string
	// LiveClients / LiveRate shape the client load: concurrent
	// generators (0 means 2) and per-client target appends/sec (0 means
	// closed-loop). See WithLoad.
	LiveClients int
	LiveRate    float64
	// LiveDuration bounds the load phase in wall time; LiveAppends in
	// granted appends. At least one must be set for a live run.
	LiveDuration time.Duration
	LiveAppends  int64
	// LiveSpray round-robins appends across all nodes instead of the
	// single-writer default (prodigal systems only get real fork
	// pressure this way; sequencer systems pin node 0 regardless).
	LiveSpray bool
	// LiveCrash schedules one crash/restart during the live load.
	LiveCrash *LiveCrash
	// LiveK, when > 0, adds the k-Fork Coherence report to the live
	// monitor's output.
	LiveK int
	// LiveWitness streams every live violation witness as the online
	// monitor forms it.
	LiveWitness func(consistency.Witness)

	// system is stamped by System.Run before the adapter sees the
	// Config, so Base can label Progress events.
	system string
	// monrun is the run's streaming state, created by System.Run when
	// Monitor/Streaming is on. Config travels by value; the shared
	// pointer is how Base's hook and the post-run finisher meet.
	monrun *monitorRun
	// obsrun is the run's observability state (metrics + trace),
	// created by System.Run when Metrics is on — same pattern as
	// monrun.
	obsrun *obsRun
}

// LiveCrash schedules one crash/restart during a live run: the node
// goes down After into the load for Downtime, then restarts — from its
// durable snapshot when Durable, from genesis (amnesia) otherwise —
// and catches up through the anti-entropy layer.
type LiveCrash struct {
	Node            int
	After, Downtime time.Duration
	Durable         bool
}

// Option mutates a Config; build one with NewConfig or pass options
// directly to Run.
type Option func(*Config)

// NewConfig assembles a Config from functional options.
func NewConfig(opts ...Option) Config {
	var c Config
	for _, opt := range opts {
		if opt != nil {
			opt(&c)
		}
	}
	return c
}

// WithN sets the number of processes.
func WithN(n int) Option { return func(c *Config) { c.N = n } }

// WithRounds sets the number of protocol rounds (ticks / heights).
func WithRounds(r int) Option { return func(c *Config) { c.Rounds = r } }

// WithSeed sets the seed driving all randomness.
func WithSeed(seed uint64) Option { return func(c *Config) { c.Seed = seed } }

// WithReadEvery sets the periodic read interval in virtual time.
func WithReadEvery(every int64) Option { return func(c *Config) { c.ReadEvery = every } }

// WithDelta sets the synchronous delay bound δ.
func WithDelta(delta int64) Option { return func(c *Config) { c.Delta = delta } }

// WithDifficulty sets the PoW difficulty of the prodigal-oracle miners.
func WithDifficulty(d float64) Option { return func(c *Config) { c.Difficulty = d } }

// WithMerits sets the per-process merit vector (hashing power / stake).
func WithMerits(merits ...float64) Option {
	return func(c *Config) { c.Merits = merits }
}

// WithFaults installs the run's network partition/eclipse windows.
// Like every other option it is last-wins: a later WithFaults replaces
// an earlier one (pass all windows in one call).
func WithFaults(faults ...Fault) Option {
	return func(c *Config) { c.Faults = faults }
}

// WithAdversary installs a process-level adversarial strategy.
func WithAdversary(a Adversary) Option { return func(c *Config) { c.Adversary = a } }

// WithCrashes installs the run's crash–recovery windows (last-wins,
// like WithFaults: pass all windows in one call). Use End == NoHeal for
// a crash-stop. Pair with WithDurability to pick the recovery
// discipline.
func WithCrashes(crashes ...Crash) Option {
	return func(c *Config) { c.Crashes = crashes }
}

// WithDurability selects how crashed processes recover: true restores
// the replica's durable snapshot at restart (it only fetches what it
// missed while down); false — the default — is amnesia: the replica
// rejoins from genesis and must resynchronize the whole tree.
func WithDurability(durable bool) Option {
	return func(c *Config) { c.Durable = durable }
}

// WithDropNth drops the nth message (0-based) addressed to process to;
// to < 0 drops the nth message overall.
func WithDropNth(nth, to int) Option {
	return func(c *Config) { c.Drop = &Drop{Nth: nth, To: to} }
}

// WithObserver installs a per-round progress callback; returning false
// stops block production early.
func WithObserver(fn func(Progress) bool) Option { return func(c *Config) { c.Observer = fn } }

// WithFaultLog forces the fault-event log on (implied by WithFaults and
// WithAdversary).
func WithFaultLog(on bool) Option { return func(c *Config) { c.FaultLog = on } }

// WithMonitor attaches an online consistency monitor: the run's history
// is checked incrementally as it is recorded, violation witnesses are
// delivered to onWitness (may be nil) the moment they form, and
// Result.Stream carries the finalized streaming verdicts — equivalent
// to the batch Check() — alongside the batch history, which is still
// retained.
func WithMonitor(onWitness func(consistency.Witness)) Option {
	return func(c *Config) {
		c.Monitor = true
		c.OnWitness = onWitness
	}
}

// WithMonitorK additionally tracks k-Fork Coherence online with the
// given bound (live witnesses at the (k+1)-th token reuse). Implies
// WithMonitor.
func WithMonitorK(k int) Option {
	return func(c *Config) {
		c.Monitor = true
		c.MonitorK = k
	}
}

// WithMonitorCheckpoint checkpoint-cycles the online monitor every
// `every` consumed operations (serialize → restore → continue), proving
// mid-run that online checking is restart-safe: the cycles must not
// change any finalized verdict. Result.Stream.Checkpoints counts the
// cycles. Implies WithMonitor.
func WithMonitorCheckpoint(every int) Option {
	return func(c *Config) {
		c.Monitor = true
		c.MonitorCheckpoint = every
	}
}

// WithStreaming runs in bounded-memory mode: operations stream through
// sealed fixed-size segments (segment ≤ 0 means the default size) into
// the online monitor and are released — resident memory is independent
// of run length, which is what makes ≥1M-op runs checkable at all. The
// trade: Result.History holds only the still-pending operations, so
// batch Check()/Digest() see an empty run; Result.Stream is the
// verdict. Implies WithMonitor.
func WithStreaming(segment int) Option {
	return func(c *Config) {
		c.Monitor = true
		c.Streaming = true
		c.StreamSegment = segment
	}
}

// WithShards runs the simulation on a sharded deterministic scheduler:
// the event heap is partitioned across k worker shards by replica
// group, independent same-timestamp deliveries are processed
// concurrently, and every order-sensitive effect (message sends, RNG
// delay draws, history recording, fault-log appends) is staged and
// committed at a merge barrier in exactly the serial execution order.
// The result — history, digest, fault log, verdicts — is specified to
// be byte-identical for every k, so sharding is purely a wall-clock
// knob; the catalogue-wide digest-diff test pins it. k ≤ 1 (the
// default) is the plain serial scheduler. Consensus-style systems
// whose handlers are not shard-safe run serially regardless — still
// correct, just not accelerated.
func WithShards(k int) Option { return func(c *Config) { c.Shards = k } }

// WithMetrics attaches the deterministic metrics layer: counters,
// gauges and histograms across the scheduler, network, replica,
// history and monitor layers, sampled against virtual time.
// Result.Metrics carries the typed snapshot; its digest-relevant
// sections are identical across shard counts, and attaching metrics
// never changes the run's replay digest.
func WithMetrics() Option { return func(c *Config) { c.Metrics = true } }

// WithMetricsInterval sets the virtual-time sampling interval of the
// metric gauge series (every ≤ 0 means the default). Implies
// WithMetrics.
func WithMetricsInterval(every int64) Option {
	return func(c *Config) {
		c.Metrics = true
		c.MetricsEvery = every
	}
}

// WithTrace streams the run's structured scheduler trace — sends,
// deliveries, timers, faults, crashes, shard epochs, merge stalls and
// monitor witnesses — to w when the run finishes: Chrome trace-event
// JSON by default (load in Perfetto or chrome://tracing), JSON-lines
// with opts.JSONL. Sampling is deterministic (by scheduler sequence
// number) and attaching a trace never changes the run's digest.
// Implies WithMetrics.
func WithTrace(w io.Writer, opts TraceOptions) Option {
	return func(c *Config) {
		c.Metrics = true
		c.TraceW = w
		c.TraceOpts = opts
	}
}

// WithLive switches the run to a real concurrent deployment over the
// named carrier — "chan" (in-process channels, the fast default) or
// "tcp" (length-prefixed frames over loopback TCP). Live runs host N
// replica nodes on wall-clock timers, drive them with concurrent client
// load (WithLoad), attach the online consistency monitor over the
// totally ordered operation feed, and report throughput, latency
// quantiles and the finalized verdicts in Result.Live. Bound the load
// with WithLiveDuration and/or WithLiveAppends (at least one is
// required). Live runs are not deterministic — the simulation-only
// knobs (faults, crash windows, adversaries, drops, sharding, monitor,
// streaming, metrics, trace, observer) are rejected.
func WithLive(carrier string) Option {
	return func(c *Config) {
		c.Live = true
		c.LiveTransport = carrier
	}
}

// WithLoad shapes a live run's client load: `clients` concurrent
// generators (0 means 2) each targeting `rate` appends/sec (0 means
// closed-loop: submit as soon as the last operation completes).
func WithLoad(clients int, rate float64) Option {
	return func(c *Config) {
		c.LiveClients = clients
		c.LiveRate = rate
	}
}

// WithLiveDuration bounds a live run's load phase in wall time.
func WithLiveDuration(d time.Duration) Option {
	return func(c *Config) { c.LiveDuration = d }
}

// WithLiveAppends bounds a live run's load phase in granted appends —
// the deterministic-progress bound tests use.
func WithLiveAppends(max int64) Option {
	return func(c *Config) { c.LiveAppends = max }
}

// WithLiveSpray round-robins live appends across all nodes instead of
// the single-writer default.
func WithLiveSpray() Option {
	return func(c *Config) { c.LiveSpray = true }
}

// WithLiveCrash schedules one crash/restart during the live load.
func WithLiveCrash(crash LiveCrash) Option {
	return func(c *Config) { c.LiveCrash = &crash }
}

// WithLiveK adds the k-Fork Coherence report to a live run's monitor
// output.
func WithLiveK(k int) Option {
	return func(c *Config) { c.LiveK = k }
}

// WithLiveWitness streams every live violation witness as the online
// monitor forms it (called from the monitor consumer goroutine; keep it
// fast).
func WithLiveWitness(fn func(consistency.Witness)) Option {
	return func(c *Config) { c.LiveWitness = fn }
}

// validate rejects configurations no system can run.
func (c Config) validate() error {
	if c.N < 0 {
		return fmt.Errorf("negative N %d", c.N)
	}
	if c.Rounds < 0 {
		return fmt.Errorf("negative Rounds %d", c.Rounds)
	}
	switch c.Adversary.Strategy {
	case "", Selfish, Withhold, Equivocate:
	default:
		return fmt.Errorf("unknown adversary strategy %q (known: %s, %s, %s)",
			c.Adversary.Strategy, Selfish, Withhold, Equivocate)
	}
	for _, m := range c.Merits {
		if m < 0 {
			return fmt.Errorf("negative merit %v", m)
		}
	}
	for _, f := range c.Faults {
		switch f.Kind {
		case "", "split", "eclipse":
		default:
			return fmt.Errorf("unknown fault kind %q (known: split, eclipse)", f.Kind)
		}
		if f.End != NoHeal && f.End < f.Start {
			return fmt.Errorf("fault %s ends before it starts", f)
		}
	}
	for _, cw := range c.Crashes {
		if cw.Proc < 0 {
			return fmt.Errorf("crash window %s names a negative process", cw)
		}
		if cw.End != NoHeal && cw.End <= cw.Start {
			return fmt.Errorf("crash window %s ends before it starts", cw)
		}
	}
	if c.MonitorK < 0 {
		return fmt.Errorf("negative MonitorK %d", c.MonitorK)
	}
	if c.MonitorCheckpoint < 0 {
		return fmt.Errorf("negative MonitorCheckpoint %d", c.MonitorCheckpoint)
	}
	if c.OnWitness != nil && !c.Monitor {
		return fmt.Errorf("OnWitness requires the monitor (use WithMonitor)")
	}
	if c.Shards < 0 {
		return fmt.Errorf("negative Shards %d", c.Shards)
	}
	if c.MetricsEvery < 0 {
		return fmt.Errorf("negative MetricsEvery %d", c.MetricsEvery)
	}
	if c.TraceOpts.SampleEvery < 0 {
		return fmt.Errorf("negative trace SampleEvery %d", c.TraceOpts.SampleEvery)
	}
	if c.TraceOpts.Limit < 0 {
		return fmt.Errorf("negative trace Limit %d", c.TraceOpts.Limit)
	}
	if c.Live {
		switch c.LiveTransport {
		case "", "chan", "tcp":
		default:
			return fmt.Errorf("unknown live transport %q (known: chan, tcp)", c.LiveTransport)
		}
		if c.LiveDuration <= 0 && c.LiveAppends <= 0 {
			return fmt.Errorf("live run needs WithLiveDuration or WithLiveAppends")
		}
		// A live run owns its monitor and its metrics, and nothing about
		// it is deterministic — every simulation-only knob is rejected so
		// a caller cannot silently get a run that ignores half its options.
		switch {
		case c.Monitor || c.Streaming:
			return fmt.Errorf("live runs attach their own online monitor (drop WithMonitor/WithStreaming; use WithLiveWitness/WithLiveK)")
		case c.Metrics || c.MetricsEvery > 0 || c.TraceW != nil:
			return fmt.Errorf("live runs measure their own metrics (drop WithMetrics/WithTrace; see Result.Live)")
		case len(c.Faults) > 0 || len(c.Crashes) > 0 || c.Drop != nil:
			return fmt.Errorf("live runs take no simulated fault schedule (use WithLiveCrash)")
		case c.Adversary.Strategy != "":
			return fmt.Errorf("live runs do not support adversaries")
		case c.Observer != nil:
			return fmt.Errorf("live runs do not support WithObserver (use WithLiveWitness)")
		case c.Shards > 1:
			return fmt.Errorf("live runs are already concurrent (drop WithShards)")
		}
		if c.LiveCrash != nil {
			n := c.N
			if n <= 0 {
				n = 4
			}
			if c.LiveCrash.Node < 0 || c.LiveCrash.Node >= n {
				return fmt.Errorf("live crash node %d out of range [0,%d)", c.LiveCrash.Node, n)
			}
		}
	} else if c.LiveTransport != "" || c.LiveClients > 0 || c.LiveRate > 0 ||
		c.LiveDuration > 0 || c.LiveAppends > 0 || c.LiveSpray ||
		c.LiveCrash != nil || c.LiveK > 0 || c.LiveWitness != nil {
		return fmt.Errorf("live load options require WithLive")
	}
	return nil
}

// Base lowers the public knob set onto the shared internal protocol
// config. Register adapters call it inside their run functions; the
// Config has already been validated by System.Run.
func (c Config) Base() protocols.Config {
	pc := protocols.Config{
		N:            c.N,
		Rounds:       c.Rounds,
		Seed:         c.Seed,
		ReadEvery:    c.ReadEvery,
		RecordFaults: c.FaultLog,
		Durable:      c.Durable,
		Shards:       c.Shards,
		Adversary: adversary.Config{
			Strategy:     adversary.Strategy(c.Adversary.Strategy),
			Proc:         c.Adversary.Proc,
			Lead:         c.Adversary.Lead,
			Forks:        c.Adversary.Forks,
			ReleaseAtEnd: c.Adversary.ReleaseAtEnd,
		},
	}
	if len(c.Merits) > 0 {
		pc.Merits = make([]tape.Merit, len(c.Merits))
		for i, m := range c.Merits {
			pc.Merits[i] = tape.Merit(m)
		}
	}
	if len(c.Faults) > 0 {
		n := c.N
		if n <= 0 {
			n = 4 // protocols.Config.Norm's default
		}
		sched := &simnet.Schedule{}
		for _, f := range c.Faults {
			sched.Windows = append(sched.Windows, f.window(n))
		}
		pc.Faults = sched
	}
	for _, cw := range c.Crashes {
		pc.Crashes = append(pc.Crashes, simnet.CrashWindow{Proc: cw.Proc, Start: cw.Start, End: cw.End})
	}
	if c.Observer != nil {
		obs, system, mr := c.Observer, c.system, c.monrun
		// Progress reports the effective round count: 0 means the
		// shared default (protocols.Config.Norm), so observers can
		// guard on p.Round < p.Rounds and compute percentages.
		rounds := c.Rounds
		if rounds <= 0 {
			rounds = 50
		}
		pc.Observer = func(round int, now int64) bool {
			return obs(Progress{
				System: system, Round: round, Rounds: rounds,
				Now: now, VirtualTime: now,
				LiveWitnesses: mr.liveWitnesses(),
			})
		}
	}
	if c.monrun != nil || c.obsrun != nil {
		mr, or := c.monrun, c.obsrun
		pc.Stream = func(rec *history.Recorder, score core.Score) {
			if mr != nil {
				mr.bind(rec, score)
			}
			if or != nil {
				or.bind(rec, mr)
			}
		}
	}
	if c.obsrun != nil {
		pc.Metrics = c.obsrun.reg
		pc.Trace = c.obsrun.tr
	}
	if c.Live {
		lc := &transport.LiveConfig{
			Transport:  c.LiveTransport,
			Clients:    c.LiveClients,
			Rate:       c.LiveRate,
			Duration:   c.LiveDuration,
			MaxAppends: c.LiveAppends,
			Spray:      c.LiveSpray,
			K:          c.LiveK,
			OnWitness:  c.LiveWitness,
		}
		if c.LiveCrash != nil {
			lc.Crash = &transport.CrashSpec{
				Node:     c.LiveCrash.Node,
				After:    c.LiveCrash.After,
				Downtime: c.LiveCrash.Downtime,
				Durable:  c.LiveCrash.Durable,
			}
		}
		pc.Live = lc
	}
	return pc
}

// DropRule lowers the Drop spec to the simnet rule the PoW adapters
// install (nil when no loss is configured).
func (c Config) DropRule() simnet.DropRule {
	if c.Drop == nil {
		return nil
	}
	inner := simnet.DropRule(nil)
	if c.Drop.To >= 0 {
		inner = simnet.DropToProcess(c.Drop.To)
	}
	return simnet.DropNth(c.Drop.Nth, inner)
}
