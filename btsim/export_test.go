package btsim

// Unregister removes a registry entry; tests that register throwaway
// systems clean up with it so the global registry stays the built-in
// seven for every other test.
func Unregister(name string) { unregister(name) }
