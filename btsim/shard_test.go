package btsim_test

import (
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
)

// TestWithShardsDigestNeutral pins the WithShards contract on every
// registered system: a sharded run replays to the byte-identical digest
// of the serial run — sharding is purely a wall-clock knob. Systems
// whose handlers are order-sensitive simply run serially under the
// option; either way the digest must not move.
func TestWithShardsDigestNeutral(t *testing.T) {
	for _, sys := range btsim.Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			serial := mustRun(t, sys, benignOpts(sys, 42)...)
			for _, k := range []int{2, 4} {
				opts := append(benignOpts(sys, 42), btsim.WithShards(k))
				sharded := mustRun(t, sys, opts...)
				if sharded.Digest() != serial.Digest() {
					t.Fatalf("WithShards(%d) digest %s != serial %s", k, sharded.Digest(), serial.Digest())
				}
			}
		})
	}
}

// TestWithShardsValidates pins the validation error on a negative
// shard count.
func TestWithShardsValidates(t *testing.T) {
	if _, err := btsim.Run("bitcoin", btsim.WithShards(-1)); err == nil {
		t.Fatal("WithShards(-1) did not fail validation")
	}
}

// TestWithShardsAdversarial pins digest neutrality on the run shape the
// sharded engine stresses hardest: an adversary noting fault events and
// publishing withheld blocks from inside delivery handlers, under
// partition windows crossing shard boundaries.
func TestWithShardsAdversarial(t *testing.T) {
	opts := func(k int) []btsim.Option {
		return []btsim.Option{
			btsim.WithN(8), btsim.WithRounds(150), btsim.WithSeed(11), btsim.WithReadEvery(6),
			btsim.WithMerits(1, 1, 1, 1, 1, 1, 1, 3),
			btsim.WithAdversary(btsim.Adversary{Strategy: btsim.Selfish, Lead: 2}),
			btsim.WithFaults(btsim.Fault{Start: 40, End: 90, Left: []int{0, 1, 2}}),
			btsim.WithShards(k),
		}
	}
	sys, err := btsim.Get("bitcoin")
	if err != nil {
		t.Fatal(err)
	}
	serial := mustRun(t, sys, opts(1)...)
	for _, k := range []int{2, 3, 8} {
		sharded := mustRun(t, sys, opts(k)...)
		if sharded.Digest() != serial.Digest() {
			t.Fatalf("WithShards(%d) adversarial digest %s != serial %s", k, sharded.Digest(), serial.Digest())
		}
	}
}
