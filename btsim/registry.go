package btsim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The registry. Protocol packages self-register in their init, so any
// import of repro/btsim/systems (or of a protocol package directly)
// makes the system reachable by name from every consumer layer —
// scenarios, experiments, the cmd tools and external code alike.
var (
	regMu    sync.RWMutex
	registry = map[string]System{}
)

// Register adds a system under its Info().Name. It panics on an empty
// name or a duplicate registration — both are programmer errors in a
// package init, and a silent overwrite would make run results depend on
// import order.
func Register(sys System) {
	if sys == nil {
		panic("btsim: Register(nil)")
	}
	name := canonical(sys.Name())
	if name == "" {
		panic("btsim: Register with empty system name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("btsim: Register called twice for system %q", name))
	}
	registry[name] = sys
}

// Lookup returns the system registered under name (case-insensitive).
func Lookup(name string) (System, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	sys, ok := registry[canonical(name)]
	return sys, ok
}

// Get is Lookup with a ready-made error listing the registered names.
func Get(name string) (System, error) {
	sys, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("btsim: unknown system %q (registered systems: %s)",
			name, strings.Join(Names(), ", "))
	}
	return sys, nil
}

// Systems returns every registered system in paper-section order
// (Info.Section, then Name — deterministic regardless of import order).
func Systems() []System {
	regMu.RLock()
	out := make([]System, 0, len(registry))
	for _, sys := range registry {
		out = append(out, sys)
	}
	regMu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Info(), out[j].Info()
		if a.Section != b.Section {
			return a.Section < b.Section
		}
		return a.Name < b.Name
	})
	return out
}

// Names returns the sorted registered system names.
func Names() []string {
	regMu.RLock()
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	regMu.RUnlock()
	sort.Strings(out)
	return out
}

// canonical normalizes a registry key.
func canonical(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// unregister removes a system; only tests use it (see export_test.go).
func unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, canonical(name))
}
