package btsim

import (
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/history"
)

// StreamOutcome is the online-monitor side of a Result: the verdicts an
// attached consistency.Monitor reached by watching the run's history as
// it was recorded, instead of classifying the batch snapshot post-hoc.
// For any completed run the two agree (the monitor's Finalize is
// specified — and diff-tested — to be equivalent to batch Classify);
// the streaming side additionally carries the witnesses that were
// emitted live, and with WithStreaming it is the only verdict there is,
// since the run retained no batch history.
type StreamOutcome struct {
	// SC and EC are the finalized criterion verdicts.
	SC, EC *consistency.Verdict
	// KFork is the k-Fork Coherence report for WithMonitorK's k (nil
	// when no k was configured).
	KFork *consistency.Report
	// Live holds the witnesses emitted while the run was in flight
	// (capped at liveKeep); LiveCount is the uncapped total.
	Live      []consistency.Witness
	LiveCount int
	// Segments and Ops describe the streamed history: sealed segment
	// count (WithStreaming only) and operations consumed.
	Segments, Ops int
	// Checkpoints counts the checkpoint→restore cycles the monitor went
	// through mid-run (WithMonitorCheckpoint); CheckpointErr carries
	// the first cycle failure — nil in any correct run, surfaced rather
	// than swallowed so tests can pin it.
	Checkpoints   int
	CheckpointErr error
	// Stats is the monitor's retained-state summary — the observable
	// side of the bounded-memory claim.
	Stats consistency.MonitorStats
}

// liveKeep caps how many live witnesses a StreamOutcome retains.
const liveKeep = 64

// monitorRun carries one run's streaming state from option processing
// (sysFunc.Run) through the protocol adapter (Config.Base wires bind as
// the protocols.Config.Stream hook) to finalization after the run.
// Config is passed by value everywhere, so the shared pointer is what
// lets the post-run finisher see what the in-run hook built.
type monitorRun struct {
	k         int
	streaming bool
	segSize   int
	ckptEvery int
	onWitness func(consistency.Witness)

	rec    *history.Recorder
	mon    *consistency.Monitor
	monCfg consistency.MonitorConfig
	seg    *history.SegmentSink
	live   []consistency.Witness
	n      int

	ckptOps int
	ckpts   int
	ckptErr error

	// obs, when the run also carries the metrics/trace layer, receives
	// each witness for latency measurement and trace emission.
	obs *obsRun
}

// monSink delegates the stream to the run's *current* monitor, so a
// checkpoint cycle can swap in the restored monitor mid-stream.
type monSink struct{ mr *monitorRun }

func (s monSink) OpDone(op *history.Op) {
	s.mr.mon.OpDone(op)
	s.mr.opConsumed(1)
}
func (s monSink) CommDone(e history.CommEvent) { s.mr.mon.CommDone(e) }
func (s monSink) Faulty(p int)                 { s.mr.mon.Faulty(p) }

// opConsumed advances the checkpoint-cycle countdown.
func (mr *monitorRun) opConsumed(n int) {
	if mr.ckptEvery <= 0 || mr.ckptErr != nil {
		return
	}
	mr.ckptOps += n
	for mr.ckptOps >= mr.ckptEvery {
		mr.ckptOps -= mr.ckptEvery
		mr.cycle()
	}
}

// cycle is one crash–recovery cut on the observer: serialize the
// monitor's retained state, restore a fresh monitor from the bytes, and
// continue on the restored one. Specified to be invisible.
func (mr *monitorRun) cycle() {
	data, err := mr.mon.Checkpoint()
	if err != nil {
		mr.ckptErr = err
		return
	}
	m2, err := consistency.RestoreMonitor(data, mr.monCfg)
	if err != nil {
		mr.ckptErr = err
		return
	}
	mr.mon = m2
	mr.ckpts++
}

// bind is the protocols.Config.Stream hook: the runner hands over its
// recorder (and score function) right after building the replica group,
// before the first operation is recorded.
func (mr *monitorRun) bind(rec *history.Recorder, score core.Score) {
	mr.rec = rec
	mr.monCfg = consistency.MonitorConfig{
		Procs: rec.Procs(),
		Score: score,
		P:     core.WellFormed{}, // what Result.Check classifies with
		K:     mr.k,
		Table: rec.Table(),
		OnWitness: func(w consistency.Witness) {
			mr.n++
			if len(mr.live) < liveKeep {
				mr.live = append(mr.live, w)
			}
			if mr.obs != nil {
				mr.obs.witness(w)
			}
			if mr.onWitness != nil {
				mr.onWitness(w)
			}
		},
	}
	mr.mon = consistency.NewMonitor(mr.monCfg)
	if mr.streaming {
		// The segment handler reads mr.mon at delivery time (not a bound
		// method), so checkpoint cycles swap the consumer too; cycles
		// land on segment boundaries in this mode.
		mr.seg = history.NewSegmentSink(mr.segSize, func(seg *history.Segment) {
			mr.mon.ConsumeSegment(seg)
			if seg != nil {
				mr.opConsumed(len(seg.Ops))
			}
		})
		mr.seg.OnFaulty = func(p int) { mr.mon.Faulty(p) }
		rec.SetSink(mr.seg)
		rec.SetRetain(false)
	} else {
		rec.SetSink(monSink{mr})
	}
}

// finish seals the stream, feeds the still-pending operations, and
// stamps the finalized StreamOutcome onto the Result.
func (mr *monitorRun) finish(res *Result) {
	if mr.mon == nil {
		return // the adapter never bound a recorder
	}
	if mr.seg != nil {
		mr.seg.Seal()
	}
	for _, op := range mr.rec.PendingOps() {
		mr.mon.OpPending(op)
	}
	sc, ec := mr.mon.Finalize()
	so := &StreamOutcome{
		SC: sc, EC: ec,
		Live: mr.live, LiveCount: mr.n,
		Stats:       mr.mon.Stats(),
		Checkpoints: mr.ckpts, CheckpointErr: mr.ckptErr,
	}
	so.Ops = so.Stats.Ops
	if mr.seg != nil {
		so.Segments = mr.seg.Sealed()
	}
	if mr.k > 0 {
		so.KFork = mr.mon.KForkReport(mr.k)
	}
	res.Stream = so
}

// liveWitnesses is read by the Progress observer wrapper.
func (mr *monitorRun) liveWitnesses() int {
	if mr == nil {
		return 0
	}
	return mr.n
}
