package btsim_test

import (
	"strings"
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
)

// crashOpts is the crash-conformance baseline: a PoW run long enough
// that a mid-run crash window and its catch-up are observable.
func crashOpts(extra ...btsim.Option) []btsim.Option {
	base := []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(120), btsim.WithSeed(7), btsim.WithReadEvery(6),
	}
	return append(base, extra...)
}

// TestWithCrashesObservable pins the crash options' observability on
// the PoW flooding systems: a crash window changes the digest, surfaces
// crash/restart/crashloss fault events, and fills Result.Recovery.
func TestWithCrashesObservable(t *testing.T) {
	for _, name := range []string{"bitcoin", "ethereum"} {
		name := name
		t.Run(name, func(t *testing.T) {
			sys, ok := btsim.Lookup(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			benign := mustRun(t, sys, crashOpts()...)
			crashed := mustRun(t, sys, crashOpts(
				btsim.WithCrashes(btsim.Crash{Proc: 2, Start: 40, End: 80}),
				btsim.WithDurability(true))...)

			if benign.Digest() == crashed.Digest() {
				t.Fatal("crash schedule did not change the digest")
			}
			if benign.Recovery != nil {
				t.Fatal("benign run carries recovery stats")
			}
			rs := crashed.Recovery
			if rs == nil || rs.Crashes != 1 || rs.Restarts != 1 || rs.DurableRestores != 1 {
				t.Fatalf("recovery stats %+v, want one durable crash/restart", rs)
			}
			if rs.Solicits == 0 {
				t.Fatalf("recovery stats %+v, want at least one catch-up solicit", rs)
			}
			kinds := map[string]int{}
			for _, e := range crashed.FaultEvents {
				kinds[e.Kind]++
			}
			if kinds["crash"] != 1 || kinds["restart"] != 1 {
				t.Fatalf("fault kinds %v, want one crash and one restart", kinds)
			}
			if kinds["crashloss"] == 0 {
				t.Fatalf("fault kinds %v, want crashloss drops while down", kinds)
			}
		})
	}
}

// TestWithDurabilityObservable pins the durable-vs-amnesia split on the
// same crash schedule: the digests differ, amnesia resyncs strictly
// more blocks, and — the hierarchy claim — the amnesia run breaks
// Local Monotonic Read (the restarted replica's reads jump backwards)
// where the durable run keeps Eventual Consistency intact.
func TestWithDurabilityObservable(t *testing.T) {
	sys, ok := btsim.Lookup("bitcoin")
	if !ok {
		t.Fatal("bitcoin not registered")
	}
	window := btsim.WithCrashes(btsim.Crash{Proc: 2, Start: 40, End: 80})
	durable := mustRun(t, sys, crashOpts(window, btsim.WithDurability(true))...)
	amnesia := mustRun(t, sys, crashOpts(window, btsim.WithDurability(false))...)

	if durable.Digest() == amnesia.Digest() {
		t.Fatal("durability did not change the digest")
	}
	if amnesia.Recovery.ResyncBlocks <= durable.Recovery.ResyncBlocks {
		t.Fatalf("amnesia resynced %d blocks, durable %d — amnesia must cost strictly more",
			amnesia.Recovery.ResyncBlocks, durable.Recovery.ResyncBlocks)
	}
	_, ecD := durable.Check()
	_, ecA := amnesia.Check()
	if !ecD.OK {
		t.Fatalf("durable recovery broke EC: %v", ecD.Failing())
	}
	if ecA.OK {
		t.Fatal("amnesia recovery left EC intact — expected a LocalMonotonicRead violation")
	}
	failing := strings.Join(ecA.Failing(), ",")
	if !strings.Contains(failing, "LocalMonotonicRead") {
		t.Fatalf("amnesia broke %s, want LocalMonotonicRead", failing)
	}
}

// TestCrashStopOption pins the permanent-crash variant: the process
// never restarts and the run still completes with the survivors.
func TestCrashStopOption(t *testing.T) {
	sys, ok := btsim.Lookup("bitcoin")
	if !ok {
		t.Fatal("bitcoin not registered")
	}
	res := mustRun(t, sys, crashOpts(
		btsim.WithCrashes(btsim.Crash{Proc: 3, Start: 50, End: btsim.NoHeal}))...)
	rs := res.Recovery
	if rs == nil || rs.Crashes != 1 || rs.Restarts != 0 {
		t.Fatalf("recovery stats %+v, want one crash and no restart", rs)
	}
	// The crash-stopped replica's tree froze mid-run.
	frozen, live := res.Trees[3].Len(), res.Trees[0].Len()
	if frozen >= live {
		t.Fatalf("crash-stopped tree has %d blocks vs %d live — it should have missed the tail", frozen, live)
	}
}

// TestCrashValidation pins the config validation of the new options.
func TestCrashValidation(t *testing.T) {
	sys, ok := btsim.Lookup("bitcoin")
	if !ok {
		t.Fatal("bitcoin not registered")
	}
	if _, err := sys.Run(btsim.NewConfig(
		btsim.WithCrashes(btsim.Crash{Proc: -1, Start: 0, End: 10}))); err == nil {
		t.Error("negative crash proc accepted")
	}
	if _, err := sys.Run(btsim.NewConfig(
		btsim.WithCrashes(btsim.Crash{Proc: 0, Start: 10, End: 10}))); err == nil {
		t.Error("empty crash window accepted")
	}
}

// TestCrashReplayDeterminism: identical crash configs replay to the
// identical digest (the crash machinery is fully deterministic).
func TestCrashReplayDeterminism(t *testing.T) {
	sys, ok := btsim.Lookup("ethereum")
	if !ok {
		t.Fatal("ethereum not registered")
	}
	opts := crashOpts(
		btsim.WithCrashes(btsim.Crash{Proc: 1, Start: 30, End: 70}, btsim.Crash{Proc: 2, Start: 90, End: btsim.NoHeal}),
		btsim.WithDurability(false))
	a := mustRun(t, sys, opts...)
	b := mustRun(t, sys, opts...)
	if a.Digest() != b.Digest() {
		t.Fatalf("crash replay diverged: %s vs %s", a.Digest(), b.Digest())
	}
}
