package btsim_test

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
	"repro/internal/trace"
)

// TestMetricsDigestNeutral pins the WithMetrics/WithTrace contract on
// the observability side of the conformance suite: attaching the full
// metrics + trace layer leaves the run's replay digest byte-identical,
// and the snapshot supersets the legacy Stats map.
func TestMetricsDigestNeutral(t *testing.T) {
	for _, system := range []string{"bitcoin", "ethereum", "byzcoin", "fabric"} {
		t.Run(system, func(t *testing.T) {
			sys, _ := btsim.Lookup(system)
			base := benignOpts(sys, 42)
			ref := mustRun(t, sys, base...)
			if ref.Metrics != nil {
				t.Fatal("bare run unexpectedly carries a metric snapshot")
			}

			res := mustRun(t, sys, append(base,
				btsim.WithMetrics(),
				btsim.WithTrace(io.Discard, btsim.TraceOptions{}))...)
			if res.Digest() != ref.Digest() {
				t.Fatal("attaching metrics+trace changed the run digest")
			}
			snap := res.Metrics
			if snap == nil {
				t.Fatal("instrumented run has no metric snapshot")
			}
			// Superset of the legacy Stats map: every protocol counter
			// appears under its own name.
			for k, v := range res.Stats {
				got, ok := snap.Value(k)
				if !ok || got != int64(v) {
					t.Fatalf("snapshot missing legacy stat %s=%d (got %d, ok=%v)", k, v, got, ok)
				}
			}
			// The sampled series carries the scheduler and network gauges.
			cols := strings.Join(snap.Series.Cols, ",")
			for _, want := range []string{"sim.queue", "sim.steps", "net.sent", "net.delivered", "hist.ops"} {
				if !strings.Contains(cols, want) {
					t.Fatalf("series cols %v missing %s", snap.Series.Cols, want)
				}
			}
			if len(snap.Series.Rows) == 0 {
				t.Fatal("no sampled rows in the series")
			}
		})
	}
}

// TestMetricsSnapshotShardIndependent pins that the digest-relevant
// sections of a metric snapshot are identical across shard counts —
// and pins the digest value itself, so any drift in what the metrics
// observe is a conscious re-pin.
func TestMetricsSnapshotShardIndependent(t *testing.T) {
	const want = "cb4cd05d48b7fc15"
	run := func(k int) *btsim.Result {
		sys, _ := btsim.Lookup("bitcoin")
		return mustRun(t, sys,
			btsim.WithN(8), btsim.WithRounds(150), btsim.WithSeed(11),
			btsim.WithReadEvery(15), btsim.WithDifficulty(5),
			btsim.WithShards(k), btsim.WithMetrics())
	}
	r1, r4 := run(1), run(4)
	d1, d4 := r1.Metrics.Digest(), r4.Metrics.Digest()
	if d1 != d4 {
		t.Fatalf("metric snapshot digest differs across shard counts: k=1 %s, k=4 %s", d1, d4)
	}
	if d1 != want {
		t.Fatalf("metric snapshot digest drifted: got %s, want %s (re-pin only if the change is intended)", d1, want)
	}
	// The k-specific section is populated only on the sharded run and
	// stays out of the digest.
	if r1.Metrics.Sharding != nil {
		t.Fatal("serial run has a Sharding section")
	}
	if sh := r4.Metrics.Sharding; sh == nil || sh.Shards != 4 {
		t.Fatalf("sharded run's Sharding section wrong: %+v", sh)
	}
}

// TestTraceExport pins the WithTrace output formats: the default is
// Chrome trace-event JSON that json.Unmarshal accepts with a non-empty
// traceEvents array, and TraceOptions.JSONL is a line stream that
// trace.ParseJSONL round-trips.
func TestTraceExport(t *testing.T) {
	sys, _ := btsim.Lookup("bitcoin")
	base := benignOpts(sys, 42)

	var chrome bytes.Buffer
	mustRun(t, sys, append(base, btsim.WithTrace(&chrome, btsim.TraceOptions{SampleEvery: 4}))...)
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &parsed); err != nil {
		t.Fatalf("Chrome trace does not parse: %v", err)
	}
	if len(parsed.TraceEvents) == 0 {
		t.Fatal("Chrome trace is empty")
	}

	var jsonl bytes.Buffer
	mustRun(t, sys, append(base, btsim.WithTrace(&jsonl, btsim.TraceOptions{SampleEvery: 4, JSONL: true}))...)
	events, err := trace.ParseJSONL(&jsonl)
	if err != nil {
		t.Fatalf("JSONL trace does not parse: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("JSONL trace is empty")
	}
	deliver := 0
	for _, ev := range events {
		if ev.Kind == trace.KDeliver {
			deliver++
		}
	}
	if deliver == 0 {
		t.Fatal("no deliver events in the trace")
	}
}

// TestMonitorMetrics pins the monitor-side instrumentation: a
// WithMonitor+WithMetrics run samples the monitor's retained-state
// gauge, and every live witness lands in the detection-latency
// histogram.
func TestMonitorMetrics(t *testing.T) {
	sys, _ := btsim.Lookup("bitcoin")
	res := mustRun(t, sys,
		btsim.WithN(4), btsim.WithRounds(120), btsim.WithSeed(9),
		btsim.WithReadEvery(15), btsim.WithDifficulty(5),
		btsim.WithDropNth(3, 2), // a lost update breaks EC → witnesses
		btsim.WithMonitor(nil), btsim.WithMetrics())
	snap := res.Metrics
	if snap == nil || res.Stream == nil {
		t.Fatal("run missing snapshot or stream outcome")
	}
	cols := strings.Join(snap.Series.Cols, ",")
	if !strings.Contains(cols, "mon.retained") {
		t.Fatalf("series cols %v missing mon.retained", snap.Series.Cols)
	}
	var lat int64 = -1
	for _, h := range snap.Hists {
		if h.Name == "mon.witnessLatency" {
			lat = h.N
		}
	}
	if lat < 0 {
		t.Fatal("snapshot missing the mon.witnessLatency histogram")
	}
	if int(lat) != res.Stream.LiveCount {
		t.Fatalf("witness latency histogram has %d observations, %d live witnesses", lat, res.Stream.LiveCount)
	}
}
