package btsim_test

import (
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
)

// benignOpts is the conformance baseline per system family: the PoW
// (prodigal-oracle) systems need a longer horizon with dense reads so
// the transient fork window is observable; the consensus family runs
// few heights.
func benignOpts(sys btsim.System, seed uint64) []btsim.Option {
	if sys.Info().K == 0 {
		return []btsim.Option{
			btsim.WithN(4), btsim.WithRounds(200), btsim.WithSeed(seed), btsim.WithReadEvery(6),
		}
	}
	return []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(25), btsim.WithSeed(seed), btsim.WithReadEvery(10),
	}
}

func mustRun(t *testing.T, sys btsim.System, opts ...btsim.Option) *btsim.Result {
	t.Helper()
	res, err := sys.Run(btsim.NewConfig(opts...))
	if err != nil {
		t.Fatalf("%s: %v", sys.Name(), err)
	}
	return res
}

// TestConformanceReplayDigest pins the registry contract every system
// must honour: identical (options, seed) replays to the identical
// digest, and the digest depends on the seed.
func TestConformanceReplayDigest(t *testing.T) {
	for _, sys := range btsim.Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			a := mustRun(t, sys, benignOpts(sys, 42)...)
			b := mustRun(t, sys, benignOpts(sys, 42)...)
			if a.Digest() != b.Digest() {
				t.Fatalf("same options+seed diverged: %s vs %s", a.Digest(), b.Digest())
			}
			c := mustRun(t, sys, benignOpts(sys, 43)...)
			if c.Digest() == a.Digest() {
				t.Fatalf("different seeds collided on digest %s", a.Digest())
			}
		})
	}
}

// TestConformanceInfoMatchesMeasured runs every registered system
// benignly and checks the measured verdicts against the system's own
// declared Info: the claimed criterion must hold and the claimed oracle
// fork bound must be respected — the registry's claims are measured,
// not trusted.
func TestConformanceInfoMatchesMeasured(t *testing.T) {
	for _, sys := range btsim.Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			info := sys.Info()
			res := mustRun(t, sys, benignOpts(sys, 42)...)
			if res.Info != info {
				t.Fatalf("Result.Info %+v != registered Info %+v", res.Info, info)
			}
			if res.OracleClaim != info.Oracle {
				t.Errorf("run claims oracle %q, registry says %q", res.OracleClaim, info.Oracle)
			}
			if res.PaperCriterion != info.Criterion {
				t.Errorf("run claims criterion %q, registry says %q", res.PaperCriterion, info.Criterion)
			}
			sc, ec := res.Check()
			switch info.Criterion {
			case "SC", "SC w.h.p.":
				if !sc.OK || !ec.OK {
					t.Errorf("declared %s but measured SC=%v EC=%v", info.Criterion, sc.OK, ec.OK)
				}
			case "EC":
				if !ec.OK {
					t.Errorf("declared EC but measured EC=%v", ec.OK)
				}
			default:
				t.Fatalf("unknown declared criterion %q", info.Criterion)
			}
			if info.K >= 1 {
				if kf := res.KFork(info.K); !kf.OK {
					t.Errorf("declared %s but %d-fork coherence violated: %v", info.Oracle, info.K, kf.Violations)
				}
				if res.MeasuredForkMax > info.K {
					t.Errorf("declared fork bound %d but measured fork degree %d", info.K, res.MeasuredForkMax)
				}
			}
		})
	}
}

// TestConformanceOptionN pins WithN on every system: the run must hold
// exactly N replicas.
func TestConformanceOptionN(t *testing.T) {
	for _, sys := range btsim.Systems() {
		sys := sys
		t.Run(sys.Name(), func(t *testing.T) {
			opts := append(benignOpts(sys, 42), btsim.WithN(6))
			res := mustRun(t, sys, opts...)
			if len(res.Trees) != 6 {
				t.Fatalf("WithN(6): run holds %d replica trees", len(res.Trees))
			}
		})
	}
}

// TestConformanceOptionRoundTrip pins that each remaining With* option
// is observable in the run it configures (on the richest adapter,
// bitcoin, plus delta on the consensus family).
func TestConformanceOptionRoundTrip(t *testing.T) {
	bitcoin, _ := btsim.Lookup("bitcoin")
	base := benignOpts(bitcoin, 42)
	ref := mustRun(t, bitcoin, base...)

	t.Run("rounds", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base, btsim.WithRounds(100))...)
		if res.Digest() == ref.Digest() {
			t.Fatal("halving Rounds left the run unchanged")
		}
	})
	t.Run("read-every", func(t *testing.T) {
		dense := mustRun(t, bitcoin, append(base, btsim.WithReadEvery(3))...)
		if len(dense.History.Reads()) <= len(ref.History.Reads()) {
			t.Fatalf("denser read schedule produced %d reads, reference %d",
				len(dense.History.Reads()), len(ref.History.Reads()))
		}
	})
	t.Run("delta", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base, btsim.WithDelta(9))...)
		if res.Digest() == ref.Digest() {
			t.Fatal("tripling the delay bound left the run unchanged")
		}
		byzcoin, _ := btsim.Lookup("byzcoin")
		bref := mustRun(t, byzcoin, benignOpts(byzcoin, 42)...)
		bres := mustRun(t, byzcoin, append(benignOpts(byzcoin, 42), btsim.WithDelta(9))...)
		if bres.Digest() == bref.Digest() {
			t.Fatal("delta not observable on the consensus family")
		}
	})
	t.Run("difficulty", func(t *testing.T) {
		easy := mustRun(t, bitcoin, append(base, btsim.WithDifficulty(3))...)
		hard := mustRun(t, bitcoin, append(base, btsim.WithDifficulty(30))...)
		if easy.Stats["mined"] <= hard.Stats["mined"] {
			t.Fatalf("lower difficulty mined %d blocks, higher mined %d",
				easy.Stats["mined"], hard.Stats["mined"])
		}
	})
	t.Run("merits", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base, btsim.WithMerits(1, 0, 0, 0))...)
		for _, b := range res.Chain(1) {
			if !b.IsGenesis() && b.Creator != 0 {
				t.Fatalf("single-miner merits, but block by p%d on the chain", b.Creator)
			}
		}
		if res.Chain(1).Height() == 0 {
			t.Fatal("single miner produced no blocks")
		}
	})
	t.Run("faults", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base,
			btsim.WithFaults(btsim.Fault{Kind: "split", Start: 20, End: 80, Left: []int{0, 1}}))...)
		if len(res.FaultEvents) == 0 {
			t.Fatal("fault schedule produced no fault events")
		}
	})
	t.Run("adversary", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base,
			btsim.WithAdversary(btsim.Adversary{Strategy: btsim.Selfish, Lead: 1}),
			btsim.WithMerits(1, 1, 1, 1.5))...)
		if res.AdversaryName == "—" || res.AdversaryName == "" {
			t.Fatalf("adversarial run labeled %q", res.AdversaryName)
		}
	})
	t.Run("drop", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base, btsim.WithDropNth(0, 2), btsim.WithMerits(1, 0, 0, 0))...)
		if ua := res.UpdateAgreement(); ua.OK {
			t.Fatal("dropping the first update to p2 should break Update Agreement")
		}
	})
	t.Run("fault-log-is-observational", func(t *testing.T) {
		res := mustRun(t, bitcoin, append(base, btsim.WithFaultLog(true))...)
		if res.Digest() != ref.Digest() {
			t.Fatal("enabling the fault log changed a benign run")
		}
	})
}

// TestConformanceObserver pins the WithObserver contract: a pure
// observer leaves the run byte-identical, sees every round in order,
// and returning false stops block production early.
func TestConformanceObserver(t *testing.T) {
	bitcoin, _ := btsim.Lookup("bitcoin")
	base := benignOpts(bitcoin, 42)
	ref := mustRun(t, bitcoin, base...)

	var seen []btsim.Progress
	res := mustRun(t, bitcoin, append(base, btsim.WithObserver(func(p btsim.Progress) bool {
		seen = append(seen, p)
		return true
	}))...)
	if res.Digest() != ref.Digest() {
		t.Fatal("a pure observer changed the run")
	}
	if len(seen) != 200 {
		t.Fatalf("observer saw %d rounds, want 200", len(seen))
	}
	for i, p := range seen {
		if p.Round != i || p.System != "bitcoin" || p.Rounds != 200 {
			t.Fatalf("progress %d wrong: %+v", i, p)
		}
		if p.VirtualTime != p.Now {
			t.Fatalf("progress %d: VirtualTime %d disagrees with Now %d", i, p.VirtualTime, p.Now)
		}
		if i > 0 && p.VirtualTime < seen[i-1].VirtualTime {
			t.Fatalf("progress %d: VirtualTime went backwards (%d after %d)", i, p.VirtualTime, seen[i-1].VirtualTime)
		}
	}

	calls := 0
	stopped := mustRun(t, bitcoin, append(base, btsim.WithObserver(func(p btsim.Progress) bool {
		calls++
		return p.Round < 20
	}))...)
	if calls != 21 {
		t.Fatalf("early-stop observer called %d times, want 21 (latched after the first false)", calls)
	}
	if stopped.Stats["mined"] >= ref.Stats["mined"] {
		t.Fatalf("early stop mined %d blocks, full run %d", stopped.Stats["mined"], ref.Stats["mined"])
	}

	// Defaulted rounds still yield a sound Progress.Rounds: observers
	// may guard on p.Round < p.Rounds even when Rounds wasn't set.
	defRounds := 0
	defRuns := 0
	mustRun(t, bitcoin, btsim.WithN(4), btsim.WithSeed(1),
		btsim.WithObserver(func(p btsim.Progress) bool {
			defRounds = p.Rounds
			defRuns++
			return p.Round < p.Rounds
		}))
	if defRounds <= 0 {
		t.Fatalf("Progress.Rounds = %d on a defaulted run, want the effective total", defRounds)
	}
	if defRuns != defRounds {
		t.Fatalf("observer saw %d rounds, effective total %d", defRuns, defRounds)
	}

	// Early stop on the consensus family: heights past the stop are
	// never started.
	byzcoin, _ := btsim.Lookup("byzcoin")
	bref := mustRun(t, byzcoin, benignOpts(byzcoin, 42)...)
	bstopped := mustRun(t, byzcoin, append(benignOpts(byzcoin, 42),
		btsim.WithObserver(func(p btsim.Progress) bool { return p.Round < 5 }))...)
	if bstopped.Stats["decisions"] >= bref.Stats["decisions"] {
		t.Fatalf("early stop decided %d times, full run %d",
			bstopped.Stats["decisions"], bref.Stats["decisions"])
	}
}

// TestConformanceIgnoredKnobsAreHarmless pins that knobs a system has
// no use for do not break its run (the documented Config contract).
func TestConformanceIgnoredKnobsAreHarmless(t *testing.T) {
	fabric, _ := btsim.Lookup("fabric")
	res := mustRun(t, fabric, append(benignOpts(fabric, 42),
		btsim.WithDifficulty(9), btsim.WithDropNth(0, 1))...)
	if sc, _ := res.Check(); !sc.OK {
		t.Fatal("fabric with ignored PoW knobs lost strong consistency")
	}
}
