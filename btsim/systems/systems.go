// Package systems registers the built-in protocol simulators — the
// seven blockchain systems of the paper's Section 5 — with the public
// btsim registry. Import it for side effects:
//
//	import _ "repro/btsim/systems"
//
// After the import, btsim.Systems() lists all seven and btsim.Run can
// execute any of them by name. A new system does not need to be listed
// here: any package calling btsim.Register in its init participates the
// moment it is imported.
package systems

import (
	_ "repro/internal/protocols/algorand"   // §5.4 — ΘF,k=1 w.h.p.
	_ "repro/internal/protocols/bitcoin"    // §5.1 — ΘP, longest chain
	_ "repro/internal/protocols/byzcoin"    // §5.3 — ΘF,k=1
	_ "repro/internal/protocols/ethereum"   // §5.2 — ΘP, GHOST
	_ "repro/internal/protocols/fabric"     // §5.7 — ΘF,k=1
	_ "repro/internal/protocols/peercensus" // §5.5 — ΘF,k=1
	_ "repro/internal/protocols/redbelly"   // §5.6 — ΘF,k=1
)
