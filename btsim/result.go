package btsim

import (
	"fmt"
	"hash/fnv"
	"io"

	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/protocols"
	"repro/internal/transport"
)

// Result is one fully recorded run of a registered system. It embeds
// the internal run record, so every consumer in this module reaches the
// recorded history, the per-process replica trees, the protocol stats
// and the fault/adversary event log directly; external users work
// through the methods below, which cover the common read paths without
// naming any internal type.
type Result struct {
	*protocols.Result
	// Info is the descriptor of the system that produced the run.
	Info Info
	// Stream carries the online monitor's verdicts when the run was
	// configured with WithMonitor or WithStreaming (nil otherwise).
	// With WithMonitor it sits alongside the batch history — Check()
	// and Stream.SC/EC are diff-tested equivalent; with WithStreaming
	// it is the only verdict, since no batch history was retained.
	Stream *StreamOutcome
	// Metrics is the typed metric snapshot of a WithMetrics/WithTrace
	// run (nil otherwise): counters, histograms, the virtual-time
	// gauge series, and the legacy protocol stats folded in — a
	// superset of the Stats map. Its digest-relevant sections are
	// deterministic across shard counts; the Sharding and Timing
	// sections carry the k-specific and wall-clock readings.
	Metrics *metrics.Snapshot
	// Live carries the deployment measurements of a WithLive run (nil
	// otherwise): sustained appends/sec, client-observed latency
	// histograms, the online monitor's finalized verdicts, carrier
	// counters and crash-recovery stats. The embedded Result fields
	// (History, Trees, Creators, ...) hold the live run's evidence, so
	// Check(), KFork() and the renderers work on it unchanged.
	Live *transport.LiveResult
}

// Check classifies the recorded history against both consistency
// criteria: BT Strong Consistency and BT Eventual Consistency. The
// verdicts carry the per-property reports and counterexample witnesses;
// their String renderings are print-ready.
func (r *Result) Check() (sc, ec *consistency.Verdict) {
	return r.checker().Classify(r.History)
}

// KFork checks k-Fork Coherence — no oracle token reused more than k
// times — the measured side of the frugal-oracle claim.
func (r *Result) KFork(k int) *consistency.Report {
	return r.checker().KForkCoherence(r.History, k)
}

// UpdateAgreement checks the R1–R3 communication properties of the
// recorded run (Definition 4.2).
func (r *Result) UpdateAgreement() *consistency.Report {
	return consistency.UpdateAgreement(r.History, r.Creators)
}

// MonotonicPrefix checks the Monotonic Prefix Consistency criterion of
// the paper's reference [20] — each process's successive reads only
// ever extend — positioned between EC and SC in the hierarchy.
func (r *Result) MonotonicPrefix() *consistency.Report {
	return r.checker().MonotonicPrefix(r.History)
}

// Chain returns the chain the system's own selection function f picks
// from the given replica's final BlockTree.
func (r *Result) Chain(replica int) core.Chain {
	if replica < 0 || replica >= len(r.Trees) {
		return nil
	}
	return r.Selector.Select(r.Trees[replica])
}

func (r *Result) checker() *consistency.Checker {
	return consistency.NewChecker(r.Score, core.WellFormed{})
}

// DigestInto folds the run's replayable content — the history header,
// every recorded operation (with its returned chain) and communication
// event, every replica tree, and the fault/adversary event log — into
// w, in a fixed order shared with the scenario layer's pinned digests.
func (r *Result) DigestInto(w io.Writer) {
	io.WriteString(w, r.History.String())
	for _, op := range r.History.Ops {
		io.WriteString(w, op.String())
	}
	for _, e := range r.History.Comm {
		io.WriteString(w, e.String())
	}
	for _, t := range r.Trees {
		for _, b := range t.Blocks() {
			io.WriteString(w, string(b.ID))
			io.WriteString(w, string(b.Parent))
		}
	}
	for _, e := range r.FaultEvents {
		io.WriteString(w, e.String())
	}
}

// Digest is the replay digest: identical (system, options, seed)
// runs produce identical digests, and any divergence in the recorded
// history, trees or fault log changes it.
func (r *Result) Digest() string {
	h := fnv.New64a()
	r.DigestInto(h)
	return fmt.Sprintf("%016x", h.Sum64())
}
