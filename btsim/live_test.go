package btsim_test

import (
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
)

// liveProperties are the six BT-ADT properties a benign single-writer
// live deployment must satisfy regardless of system — the live-vs-sim
// conformance contract: the deployment path (real goroutines, wall
// clocks, live carrier) reaches the same verdicts the simulated path
// pins in the scenario catalogue.
func checkLiveBenign(t *testing.T, system string) {
	t.Helper()
	res, err := btsim.Run(system,
		btsim.WithN(8),
		btsim.WithSeed(42),
		btsim.WithLive("chan"),
		btsim.WithLiveAppends(20),
		btsim.WithLoad(2, 0),
	)
	if err != nil {
		t.Fatal(err)
	}
	lr := res.Live
	if lr == nil {
		t.Fatal("WithLive run returned no LiveResult")
	}
	if lr.MonitorErr != nil {
		t.Fatalf("online monitor failed: %v", lr.MonitorErr)
	}
	if !lr.Converged {
		t.Fatal("deployment did not converge before the settle timeout")
	}
	if lr.LiveWitnesses != 0 {
		t.Fatalf("benign run streamed %d live witnesses", lr.LiveWitnesses)
	}
	if v := lr.Violated(); len(v) != 0 {
		t.Fatalf("benign live %s violated %v\nSC: %v\nEC: %v", system, v, lr.SC, lr.EC)
	}
	// All six properties present and OK across the two verdicts.
	seen := map[string]bool{}
	for _, rep := range append(lr.SC.Reports, lr.EC.Reports...) {
		if !rep.OK {
			t.Fatalf("%s: property %s broken: %v", system, rep.Property, rep)
		}
		seen[rep.Property] = true
	}
	for _, p := range []string{
		"BlockValidity", "LocalMonotonicRead", "StrongPrefix",
		"EverGrowingTree", "EventualPrefix",
	} {
		if !seen[p] {
			t.Fatalf("%s: property %s missing from live verdicts (got %v)", system, p, seen)
		}
	}
	// The live evidence feeds the batch checker identically: Check()
	// on the embedded Result must agree with the online verdicts.
	sc, ec := res.Check()
	if !sc.OK || !ec.OK {
		t.Fatalf("%s: batch re-check of live history disagrees:\nSC: %v\nEC: %v", system, sc, ec)
	}
	if lr.AppendsOK < 20 {
		t.Fatalf("%s: granted %d appends, want >= 20", system, lr.AppendsOK)
	}
}

func TestLiveConformanceBitcoin(t *testing.T) { checkLiveBenign(t, "bitcoin") }
func TestLiveConformanceFabric(t *testing.T)  { checkLiveBenign(t, "fabric") }

func TestLiveRejectsSimulationKnobs(t *testing.T) {
	cases := [][]btsim.Option{
		{btsim.WithLive("chan"), btsim.WithLiveAppends(5), btsim.WithMonitor(nil)},
		{btsim.WithLive("chan"), btsim.WithLiveAppends(5), btsim.WithShards(4)},
		{btsim.WithLive("chan"), btsim.WithLiveAppends(5), btsim.WithCrashes(btsim.Crash{Proc: 1, Start: 1, End: 2})},
		{btsim.WithLive("carrier-pigeon"), btsim.WithLiveAppends(5)},
		{btsim.WithLive("chan")},   // no duration, no budget
		{btsim.WithLiveAppends(5)}, // live knob without WithLive
	}
	for i, opts := range cases {
		if _, err := btsim.Run("bitcoin", opts...); err == nil {
			t.Errorf("case %d: invalid live config accepted", i)
		}
	}
}
