package btsim

import (
	"fmt"
	"io"

	"repro/internal/consistency"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// TraceOptions tunes WithTrace's structured scheduler trace.
type TraceOptions struct {
	// SampleEvery keeps every SampleEvery-th send/deliver/timer event
	// (by scheduler sequence number — deterministic); rare events
	// (faults, crashes, shard epochs, merge stalls, witnesses) are
	// always kept. 0 means 1: keep everything.
	SampleEvery int64
	// Limit caps retained events (0 means trace.DefaultLimit); events
	// beyond it are counted as dropped, never silently lost.
	Limit int
	// JSONL writes the trace as JSON-lines instead of the default
	// Chrome trace-event JSON (load the default in Perfetto /
	// chrome://tracing; pipe JSONL through cmd/trace to convert).
	JSONL bool
}

// witnessLatencyBounds buckets the virtual-time gap between a
// violation's formation (its latest operation response) and the online
// monitor emitting the witness.
var witnessLatencyBounds = []int64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}

// obsRun carries one run's observability state from option processing
// (sysFunc.Run) through the protocol adapter (Config.Base lowers reg
// and tr onto protocols.Config, whose ApplyObservability installs them
// on the simulator and group) to finalization after the run — the same
// shared-pointer pattern monitorRun uses, because Config travels by
// value.
type obsRun struct {
	reg       *metrics.Registry
	tr        *trace.Tracer
	traceW    io.Writer
	traceOpts TraceOptions

	rec    *history.Recorder
	witLat *metrics.Histogram
}

// newObsRun builds the run's registry (always — WithTrace implies
// metrics, since the Chrome export renders the sampled series as
// counter tracks) and, when a trace writer is set, the tracer.
func newObsRun(cfg *Config) *obsRun {
	or := &obsRun{
		reg:       metrics.New(cfg.MetricsEvery),
		traceW:    cfg.TraceW,
		traceOpts: cfg.TraceOpts,
	}
	if cfg.TraceW != nil {
		or.tr = trace.New(trace.Options{
			SampleEvery: cfg.TraceOpts.SampleEvery,
			Limit:       cfg.TraceOpts.Limit,
		})
	}
	return or
}

// bind runs inside the protocols.Config.Stream hook, right after the
// runner built its recorder: it keeps the recorder for witness-latency
// timestamps and registers the monitor's retained-state gauges when an
// online monitor rides along.
func (or *obsRun) bind(rec *history.Recorder, mr *monitorRun) {
	or.rec = rec
	if mr == nil {
		return
	}
	// Probes read mr.mon at sample time, so checkpoint cycles swapping
	// the monitor pointer are followed. Stats() walks the retained
	// state — fine at sample points, which sit outside any handler.
	or.reg.Probe("mon.retained", func() int64 {
		if mr.mon == nil {
			return 0
		}
		return int64(mr.mon.Stats().Retained)
	})
	or.reg.Probe("mon.witnesses", func() int64 {
		if mr.mon == nil {
			return 0
		}
		return int64(mr.mon.LiveWitnesses())
	})
	or.witLat = or.reg.Histogram("mon.witnessLatency", witnessLatencyBounds...)
}

// witness observes one live violation witness: detection latency is the
// virtual time elapsed since the violation formed — the latest response
// among the witnessing operations (invocation time for still-pending
// ones). Also emits the always-kept trace event.
func (or *obsRun) witness(w consistency.Witness) {
	if or.rec == nil {
		return
	}
	now := or.rec.Now()
	formed := int64(0)
	for _, op := range w.Ops {
		t := op.RspTime
		if op.Pending {
			t = op.InvTime
		}
		if t > formed {
			formed = t
		}
	}
	if or.witLat != nil {
		or.witLat.Observe(now - formed)
	}
	if or.tr != nil {
		or.tr.Emit(trace.Event{
			VT: now, Seq: or.tr.NextWitnessSeq(), Kind: trace.KWitness,
			Shard: -1, P: -1, Detail: w.Property,
		})
	}
}

// finish snapshots the registry onto the Result and writes the trace.
// Called by sysFunc.Run after the monitor finisher, so the legacy Stats
// map is complete when it is folded into the snapshot.
func (or *obsRun) finish(res *Result) error {
	snap := or.reg.Snapshot()
	if res.Result != nil {
		snap.FoldStats(res.Stats)
	}
	res.Metrics = snap
	if or.tr == nil || or.traceW == nil {
		return nil
	}
	events := or.tr.Events()
	var err error
	if or.traceOpts.JSONL {
		err = trace.WriteJSONL(or.traceW, events)
	} else {
		err = trace.WriteChrome(or.traceW, events, snap)
	}
	if err != nil {
		return fmt.Errorf("writing trace: %w", err)
	}
	return nil
}
