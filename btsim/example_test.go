package btsim_test

import (
	"fmt"

	"repro/btsim"
	_ "repro/btsim/systems" // register the Section 5 seven
)

// The minimal loop: run a registered system by name, check the measured
// consistency verdicts, and print the replay digest's determinism — the
// same (system, options, seed) triple always replays byte-identically.
func Example() {
	opts := []btsim.Option{
		btsim.WithN(4), btsim.WithRounds(120), btsim.WithSeed(42),
	}
	res, err := btsim.Run("bitcoin", opts...)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	sc, ec := res.Check()
	replay, _ := btsim.Run("bitcoin", opts...)
	fmt.Println("eventual consistency holds:", ec.OK)
	fmt.Println("strong consistency holds:", sc.OK)
	fmt.Println("replay digest identical:", replay.Digest() == res.Digest())
	// Output:
	// eventual consistency holds: true
	// strong consistency holds: false
	// replay digest identical: true
}

// WithShards moves the run onto the sharded deterministic scheduler.
// Sharding is purely a wall-clock knob: the contract — pinned by the
// catalogue-wide digest-diff test — is that every shard count replays
// the byte-identical history, fault log and digest of the serial run.
func ExampleWithShards() {
	opts := func(shards int) []btsim.Option {
		return []btsim.Option{
			btsim.WithN(8), btsim.WithRounds(120), btsim.WithSeed(42),
			btsim.WithShards(shards),
		}
	}
	serial, err := btsim.Run("bitcoin", opts(1)...)
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	for _, k := range []int{2, 4} {
		sharded, err := btsim.Run("bitcoin", opts(k)...)
		if err != nil {
			fmt.Println("run:", err)
			return
		}
		fmt.Printf("shards=%d digest equals serial: %v\n", k, sharded.Digest() == serial.Digest())
	}
	// Output:
	// shards=2 digest equals serial: true
	// shards=4 digest equals serial: true
}

// Systems lists every registered system (in paper-section order) with
// the oracle family and consistency criterion the paper claims for it.
func ExampleSystems() {
	for _, sys := range btsim.Systems() {
		fmt.Println(sys.Name())
	}
	// Output:
	// bitcoin
	// ethereum
	// byzcoin
	// algorand
	// peercensus
	// redbelly
	// fabric
}
