// Package btsim is the public face of the repository: one uniform way
// to run, observe and check every blockchain system the paper's Section
// 5 maps onto the BlockTree abstract data type.
//
// The paper's whole point is that Bitcoin, Ethereum, ByzCoin, Algorand,
// PeerCensus, Red Belly and Hyperledger Fabric are instances of *one*
// abstraction — a BT-ADT refined by a token oracle — so the API treats
// them as instances of one interface:
//
//   - System is a registered protocol simulator: a Name, an Info
//     describing the oracle family and consistency criterion the paper
//     claims for it, and a Run that executes a deterministic
//     discrete-event simulation and returns the recorded Result.
//   - Each protocol package registers itself in its init (Register);
//     Systems, Names and Lookup expose the registry. Importing
//     repro/btsim/systems for side effects registers the built-in seven.
//   - Run options are functional: WithN, WithRounds, WithSeed,
//     WithDelta, WithDifficulty, WithMerits, WithFaults, WithAdversary,
//     WithObserver and friends replace the per-protocol config structs.
//     WithMonitor/WithStreaming attach the online consistency monitor
//     (live witnesses, bounded-memory runs); WithShards moves the
//     simulation onto the sharded deterministic scheduler — a pure
//     wall-clock knob, specified to leave every digest byte-identical.
//   - Result carries the recorded history, the per-process replica
//     trees and the fault/adversary event log, plus checker access
//     (Check, KFork, UpdateAgreement) and a replay Digest: identical
//     (system, options, seed) triples produce identical digests.
//
// A minimal run:
//
//	res, err := btsim.Run("bitcoin",
//		btsim.WithN(4), btsim.WithRounds(300), btsim.WithSeed(42),
//		btsim.WithDifficulty(10))
//	if err != nil { ... }
//	sc, ec := res.Check()
//	fmt.Println(res, sc, ec)
//
// Adding a new system to the whole stack — scenarios, experiments,
// Table 1, the cmd tools — is one package with one Register call.
package btsim

import "fmt"

// Info describes a registered system: the paper's claims, which the
// checkers then measure rather than assume.
type Info struct {
	// Name is the registry key, lower-case ("bitcoin", "fabric", ...).
	Name string
	// Section is the paper section the mapping comes from ("5.1"…);
	// Systems() lists in section order.
	Section string
	// Oracle is the claimed oracle family ("ΘP", "ΘF,k=1", ...).
	Oracle string
	// K is the claimed oracle fork bound: 0 means unbounded (the
	// prodigal oracle ΘP), k ≥ 1 means the frugal oracle ΘF,k.
	K int
	// Criterion is the paper's Table 1 consistency class for the
	// system: "EC", "SC" or "SC w.h.p.".
	Criterion string
	// Synopsis is a one-line description for listings.
	Synopsis string
}

// System is one runnable protocol simulator.
type System interface {
	// Name returns the registry key.
	Name() string
	// Info returns the system descriptor (oracle family, claimed
	// criterion, paper section).
	Info() Info
	// Run executes one deterministic simulation under the given
	// configuration and returns the fully recorded result.
	Run(cfg Config) (*Result, error)
}

// RunFunc is the adapter a protocol package registers: it lowers the
// public Config onto the package's own knobs and executes the run.
type RunFunc func(cfg Config) (*Result, error)

// sysFunc is the System implementation NewSystem returns.
type sysFunc struct {
	info Info
	run  RunFunc
}

func (s *sysFunc) Name() string { return s.info.Name }
func (s *sysFunc) Info() Info   { return s.info }

func (s *sysFunc) Run(cfg Config) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, fmt.Errorf("btsim: %s: %w", s.info.Name, err)
	}
	cfg.system = s.info.Name
	if cfg.Monitor || cfg.Streaming {
		cfg.monrun = &monitorRun{
			k:         cfg.MonitorK,
			streaming: cfg.Streaming,
			segSize:   cfg.StreamSegment,
			ckptEvery: cfg.MonitorCheckpoint,
			onWitness: cfg.OnWitness,
		}
	}
	if cfg.Metrics || cfg.MetricsEvery > 0 || cfg.TraceW != nil {
		cfg.obsrun = newObsRun(&cfg)
		if cfg.monrun != nil {
			cfg.monrun.obs = cfg.obsrun
		}
	}
	res, err := s.run(cfg)
	if err != nil {
		return nil, fmt.Errorf("btsim: %s: %w", s.info.Name, err)
	}
	res.Info = s.info
	if res.Live != nil && res.Metrics == nil {
		res.Metrics = res.Live.Metrics
	}
	if cfg.monrun != nil {
		cfg.monrun.finish(res)
	}
	if cfg.obsrun != nil {
		if err := cfg.obsrun.finish(res); err != nil {
			return res, fmt.Errorf("btsim: %s: %w", s.info.Name, err)
		}
	}
	return res, nil
}

// NewSystem builds a System from a descriptor and a run adapter; every
// protocol package calls it inside Register in its init. The returned
// system validates the Config before invoking run and stamps the Info
// onto the Result after it.
func NewSystem(info Info, run RunFunc) System {
	return &sysFunc{info: info, run: run}
}

// Run looks up a registered system by name and runs it — the one-call
// entry point. Unknown names return an error listing the registered
// options.
func Run(system string, opts ...Option) (*Result, error) {
	sys, err := Get(system)
	if err != nil {
		return nil, err
	}
	return sys.Run(NewConfig(opts...))
}
