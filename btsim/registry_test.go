package btsim_test

import (
	"strings"
	"testing"

	"repro/btsim"
	_ "repro/btsim/systems"
)

// sevenSystems is the full Section 5 mapping the registry must carry
// once repro/btsim/systems is imported.
var sevenSystems = []string{
	"bitcoin", "ethereum", "byzcoin", "algorand", "peercensus", "redbelly", "fabric",
}

func TestRegistryCarriesAllSevenSystems(t *testing.T) {
	if got := len(btsim.Systems()); got < len(sevenSystems) {
		t.Fatalf("Systems() returned %d systems, want ≥ %d", got, len(sevenSystems))
	}
	for _, name := range sevenSystems {
		sys, ok := btsim.Lookup(name)
		if !ok {
			t.Fatalf("system %q not registered", name)
		}
		info := sys.Info()
		if info.Name != name {
			t.Errorf("Lookup(%q).Info().Name = %q", name, info.Name)
		}
		if info.Oracle == "" || info.Criterion == "" || info.Section == "" || info.Synopsis == "" {
			t.Errorf("%s: incomplete Info %+v", name, info)
		}
		switch info.Criterion {
		case "EC":
			if info.K != 0 {
				t.Errorf("%s: EC system should claim the prodigal oracle (K=0), got K=%d", name, info.K)
			}
		case "SC", "SC w.h.p.":
			if info.K < 1 {
				t.Errorf("%s: SC system should claim a frugal oracle (K≥1), got K=%d", name, info.K)
			}
		default:
			t.Errorf("%s: unknown criterion %q", name, info.Criterion)
		}
	}
}

func TestSystemsOrderedBySection(t *testing.T) {
	systems := btsim.Systems()
	for i := 1; i < len(systems); i++ {
		a, b := systems[i-1].Info(), systems[i].Info()
		if a.Section > b.Section || (a.Section == b.Section && a.Name > b.Name) {
			t.Fatalf("Systems() out of section order: %s (§%s) before %s (§%s)",
				a.Name, a.Section, b.Name, b.Section)
		}
	}
}

func TestLookupIsCaseInsensitive(t *testing.T) {
	for _, name := range []string{"Bitcoin", "BITCOIN", " bitcoin "} {
		if _, ok := btsim.Lookup(name); !ok {
			t.Errorf("Lookup(%q) failed", name)
		}
	}
	if _, ok := btsim.Lookup("nope"); ok {
		t.Error("Lookup of unknown system succeeded")
	}
}

func TestGetErrorListsRegisteredSystems(t *testing.T) {
	_, err := btsim.Get("dogecoin")
	if err == nil {
		t.Fatal("Get of unknown system did not error")
	}
	for _, name := range sevenSystems {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered system %q", err, name)
		}
	}
}

func TestRunUnknownSystemErrors(t *testing.T) {
	if _, err := btsim.Run("dogecoin"); err == nil {
		t.Fatal("Run of unknown system did not error")
	}
}

func TestRegisterRejectsDuplicatesAndNil(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("Register(nil)", func() { btsim.Register(nil) })
	mustPanic("empty name", func() {
		btsim.Register(btsim.NewSystem(btsim.Info{}, nil))
	})

	dummy := btsim.NewSystem(btsim.Info{Name: "dummy-for-test", Section: "9.9"},
		func(btsim.Config) (*btsim.Result, error) { return nil, nil })
	btsim.Register(dummy)
	t.Cleanup(func() { btsim.Unregister("dummy-for-test") })
	mustPanic("duplicate name", func() { btsim.Register(dummy) })
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []btsim.Option
	}{
		{"negative N", []btsim.Option{btsim.WithN(-1)}},
		{"negative rounds", []btsim.Option{btsim.WithRounds(-5)}},
		{"unknown strategy", []btsim.Option{btsim.WithAdversary(btsim.Adversary{Strategy: "51pct"})}},
		{"negative merit", []btsim.Option{btsim.WithMerits(1, -2)}},
		{"bad fault kind", []btsim.Option{btsim.WithFaults(btsim.Fault{Kind: "wormhole"})}},
		{"fault ends before start", []btsim.Option{btsim.WithFaults(btsim.Fault{Kind: "split", Start: 10, End: 5})}},
	}
	for _, tc := range cases {
		if _, err := btsim.Run("bitcoin", tc.opts...); err == nil {
			t.Errorf("%s: Run accepted invalid config", tc.name)
		}
	}
}
