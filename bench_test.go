// Package repro's root bench harness: one testing.B benchmark per paper
// artifact (Figures 1–14, Table 1, the two theorem witnesses), each
// regenerating the artifact and failing the benchmark if it does not
// reproduce, plus the ablation benches DESIGN.md calls out:
//
//	BenchmarkAblationForkChoice      — longest vs heaviest vs GHOST on one trace
//	BenchmarkAblationFrugalK         — k = 1, 2, 4, ∞ frugal oracles
//	BenchmarkAblationSynchrony       — δ-sync vs GST vs async delivery
//	BenchmarkAblationCheckerStrategy — pairwise vs sorted Strong Prefix check
//
// Run with: go test -bench=. -benchmem
package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/benchsuite"
	"repro/internal/consistency"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/oracle"
	"repro/internal/protocols"
	"repro/internal/protocols/algorand"
	"repro/internal/protocols/bitcoin"
	"repro/internal/protocols/byzcoin"
	"repro/internal/protocols/ethereum"
	"repro/internal/protocols/fabric"
	"repro/internal/protocols/peercensus"
	"repro/internal/protocols/redbelly"
	"repro/internal/refine"
	"repro/internal/replica"
	"repro/internal/simnet"
)

// benchExperiment wraps one experiment into a benchmark that also
// verifies reproduction.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		res := e.Run(42 + uint64(i%3))
		if !res.OK {
			b.Fatalf("%s did not reproduce:\n%s", res.ID, res)
		}
	}
}

func BenchmarkFigure1SequentialSpec(b *testing.B)           { benchExperiment(b, "fig1") }
func BenchmarkFigure2StrongConsistency(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFigure3EventualConsistency(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFigure4Violation(b *testing.B)                { benchExperiment(b, "fig4") }
func BenchmarkFigure5OracleState(b *testing.B)              { benchExperiment(b, "fig5") }
func BenchmarkFigure6OraclePath(b *testing.B)               { benchExperiment(b, "fig6") }
func BenchmarkFigure7RefinedAppend(b *testing.B)            { benchExperiment(b, "fig7") }
func BenchmarkFigure8Hierarchy(b *testing.B)                { benchExperiment(b, "fig8") }
func BenchmarkFigure9CASvsCT(b *testing.B)                  { benchExperiment(b, "fig9") }
func BenchmarkFigure10CASFromCT(b *testing.B)               { benchExperiment(b, "fig10") }
func BenchmarkFigure11Consensus(b *testing.B)               { benchExperiment(b, "fig11") }
func BenchmarkFigure12Snapshot(b *testing.B)                { benchExperiment(b, "fig12") }
func BenchmarkFigure13UpdateAgreement(b *testing.B)         { benchExperiment(b, "fig13") }
func BenchmarkFigure14MessagePassingHierarchy(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkTheoremLRCNecessity(b *testing.B)             { benchExperiment(b, "lrc") }
func BenchmarkTheorem48Impossibility(b *testing.B)          { benchExperiment(b, "thm48") }
func BenchmarkTable1Classification(b *testing.B)            { benchExperiment(b, "table1") }

// BenchmarkSimScale is the tracked end-to-end pipeline benchmark
// (internal/benchsuite): N replicas, one flooded block per tick,
// periodic read batches, full Classify. Its per-snapshot trajectory is
// recorded by cmd/bench into BENCH_<date>.json.
func BenchmarkSimScale(b *testing.B) {
	for _, c := range benchsuite.Cases() {
		b.Run(strings.TrimPrefix(c.Name, "SimScale/"), c.Bench)
	}
}

// powTrace runs one Bitcoin-style simulation and returns its result
// (shared input for the fork-choice ablation).
func powTrace(seed uint64) *protocols.Result {
	cfg := bitcoin.Config{}
	cfg.N = 4
	cfg.Rounds = 200
	cfg.Seed = seed
	cfg.ReadEvery = 10
	cfg.Difficulty = 5
	return bitcoin.Run(cfg)
}

// BenchmarkAblationForkChoice evaluates the three selection functions on
// the same final BlockTree: the selector changes which chain reads
// return (and how fast selection runs) but never the EC verdict
// (DESIGN.md ablation #1).
func BenchmarkAblationForkChoice(b *testing.B) {
	res := powTrace(1)
	tree := res.Trees[0]
	for _, f := range []core.Selector{core.LongestChain{}, core.HeaviestChain{}, core.GHOST{}} {
		b.Run(f.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := f.Select(tree)
				if c.Len() == 0 {
					b.Fatal("empty selection")
				}
			}
		})
	}
}

// BenchmarkAblationFrugalK drives the same refined-append workload
// against oracles of increasing k and reports the throughput cost of the
// fork bound (DESIGN.md ablation #2).
func BenchmarkAblationFrugalK(b *testing.B) {
	for _, k := range []int{1, 2, 4, oracle.Unbounded} {
		name := fmt.Sprintf("k=%d", k)
		if k == oracle.Unbounded {
			name = "k=inf"
		}
		b.Run(name, func(b *testing.B) {
			orc := oracle.NewFrugal(k, nil, core.WellFormed{}, 7)
			bt := refine.New(refine.Config{Oracle: orc})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bt.Append(i%4, 0.9, i, []byte{byte(i), byte(i >> 8), byte(i >> 16)})
			}
		})
	}
}

// BenchmarkAblationSynchrony floods the same block workload under the
// three timing models (DESIGN.md ablation #3): the simulator cost per
// delivered message and the convergence behaviour.
func BenchmarkAblationSynchrony(b *testing.B) {
	models := []simnet.DelayModel{
		simnet.Synchronous{Delta: 3},
		simnet.PartialSynchrony{GST: 50, DeltaBefore: 20, DeltaAfter: 3},
		simnet.Asynchronous{P: 0.3},
	}
	for _, m := range models {
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sim := simnet.NewSim(uint64(i))
				g := replica.NewGroup(sim, 4, m, core.LongestChain{})
				for j := 0; j < 30; j++ {
					p := j % 4
					round := j
					tt := int64(j*25 + 1)
					sim.Schedule(tt, func() {
						// Each process extends its own selected
						// head: appends never depend on in-flight
						// deliveries, whatever the delay tail.
						head := g.Procs[p].SelectedHead()
						blk := core.NewBlock(head.ID, head.Height+1, p, round, []byte{byte(round)})
						g.Procs[p].AppendLocal(blk)
					})
				}
				sim.RunUntilIdle()
				want := g.Procs[0].Tree().Len()
				for _, p := range g.Procs {
					if p.Tree().Len() != want {
						b.Fatalf("replicas diverged under %s", m.Name())
					}
				}
			}
		})
	}
}

// BenchmarkAblationCheckerStrategy compares the O(r²) pairwise Strong
// Prefix checker against the sorted O(r log r) variant on a long
// prefix-ordered history (DESIGN.md ablation #4).
func BenchmarkAblationCheckerStrategy(b *testing.B) {
	chain := core.GenesisChain()
	for i := 1; i <= 400; i++ {
		h := chain.Head()
		chain = chain.Append(core.NewBlock(h.ID, h.Height+1, 0, i, []byte{byte(i)}))
	}
	rec := history.NewRecorder(4, nil)
	for _, blk := range chain[1:] {
		rec.Append(0, blk, true)
	}
	for i := 1; i <= 400; i++ {
		rec.Read(i%4, chain[:i+1])
	}
	h := rec.Snapshot()
	chk := consistency.NewChecker(nil, nil)

	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !chk.StrongPrefix(h).OK {
				b.Fatal("violation on clean history")
			}
		}
	})
	b.Run("sorted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !chk.StrongPrefixFast(h).OK {
				b.Fatal("violation on clean history")
			}
		}
	})
}

// buildScalingTree builds an n-block tree of the given shape for the
// selector-scaling benchmarks (DESIGN.md ablation #5):
//
//   - "chainlike": 50 long competing branches extended round-robin —
//     few leaves, deep paths (height n/50), the shape of a chain with a
//     handful of long-lived forks;
//   - "forked": every block chains under a uniformly random earlier
//     block — many leaves, shallow paths, the worst case for leaf-count
//     dependent selection.
//
// Weights cycle 1..7 so heaviest-chain does real work.
func buildScalingTree(b *testing.B, n int, shape string) *core.Tree {
	b.Helper()
	tr := core.NewTree()
	attach := func(blk *core.Block) {
		if err := tr.Attach(blk); err != nil {
			b.Fatal(err)
		}
	}
	switch shape {
	case "chainlike":
		const branches = 50
		tips := make([]*core.Block, branches)
		for i := range tips {
			tips[i] = core.Genesis()
		}
		for i := 0; i < n; i++ {
			k := i % branches
			p := tips[k]
			blk := core.NewBlock(p.ID, p.Height+1, k, i, []byte{byte(i), byte(i >> 8)}).
				WithWeight(i%7 + 1)
			attach(blk)
			tips[k] = blk
		}
	case "forked":
		rng := rand.New(rand.NewSource(42))
		all := []*core.Block{core.Genesis()}
		for i := 0; i < n; i++ {
			p := all[rng.Intn(len(all))]
			blk := core.NewBlock(p.ID, p.Height+1, i%8, i, []byte{byte(i), byte(i >> 8)}).
				WithWeight(i%7 + 1)
			attach(blk)
			all = append(all, blk)
		}
	default:
		b.Fatalf("unknown shape %q", shape)
	}
	return tr
}

// BenchmarkSelectorScaling measures each selection function on 1k-, 10k-
// and 100k-block trees of both shapes (DESIGN.md ablation #5). With the
// incremental indices, selection cost depends on the leaf count and the
// winning chain's height, not the tree size — the per-op time must stay
// near-flat in n for chainlike shapes (fixed leaf count) instead of
// growing linearly (longest, ghost) or quadratically (heaviest).
func BenchmarkSelectorScaling(b *testing.B) {
	for _, shape := range []string{"chainlike", "forked"} {
		for _, n := range []int{1_000, 10_000, 100_000} {
			tree := buildScalingTree(b, n, shape)
			for _, f := range []core.Selector{core.LongestChain{}, core.HeaviestChain{}, core.GHOST{}} {
				b.Run(fmt.Sprintf("%s/%dk/%s", shape, n/1000, f.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if c := f.Select(tree); c.Len() == 0 {
							b.Fatal("empty selection")
						}
					}
				})
				b.Run(fmt.Sprintf("%s/%dk/%s-head", shape, n/1000, f.Name()), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if core.HeadOf(f, tree) == nil {
							b.Fatal("nil head")
						}
					}
				})
			}
		}
	}
}

// BenchmarkProtocolRuns measures one full simulation per system — the
// end-to-end cost of a Table 1 row.
func BenchmarkProtocolRuns(b *testing.B) {
	common := protocols.Config{N: 4, Rounds: 30, ReadEvery: 10}
	for _, run := range []struct {
		name string
		fn   func(seed uint64) *protocols.Result
	}{
		{"Bitcoin", powTrace},
		{"Ethereum", func(s uint64) *protocols.Result {
			c := ethereum.Config{Config: common, Difficulty: 4}
			c.Seed = s
			return ethereum.Run(c)
		}},
		{"Algorand", func(s uint64) *protocols.Result {
			c := algorand.Config{Config: common}
			c.Seed = s
			return algorand.Run(c)
		}},
		{"ByzCoin", func(s uint64) *protocols.Result {
			c := byzcoin.Config{Config: common}
			c.Seed = s
			return byzcoin.Run(c)
		}},
		{"PeerCensus", func(s uint64) *protocols.Result {
			c := peercensus.Config{Config: common}
			c.Seed = s
			return peercensus.Run(c)
		}},
		{"RedBelly", func(s uint64) *protocols.Result {
			c := redbelly.Config{Config: common}
			c.Seed = s
			return redbelly.Run(c)
		}},
		{"Fabric", func(s uint64) *protocols.Result {
			c := fabric.Config{Config: common}
			c.Seed = s
			return fabric.Run(c)
		}},
	} {
		b.Run(run.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := run.fn(uint64(i))
				if res.History == nil {
					b.Fatal("no history")
				}
			}
		})
	}
}

// BenchmarkOracleOps measures the primitive oracle operations.
func BenchmarkOracleOps(b *testing.B) {
	b.Run("getToken", func(b *testing.B) {
		orc := oracle.NewProdigal(nil, core.WellFormed{}, 3)
		g := core.Genesis()
		for i := 0; i < b.N; i++ {
			orc.GetToken(0.5, g, 0, i, nil)
		}
	})
	b.Run("consumeToken", func(b *testing.B) {
		orc := oracle.NewProdigal(nil, core.WellFormed{}, 3)
		g := core.Genesis()
		blocks := make([]*core.Block, 0, b.N)
		for len(blocks) < b.N {
			if blk, ok := orc.GetToken(0.9, g, 0, len(blocks), []byte{byte(len(blocks))}); ok {
				blocks = append(blocks, blk)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			orc.ConsumeToken(blocks[i])
		}
	})
}

// BenchmarkTreeOps measures the core data-structure operations at a
// realistic tree size.
func BenchmarkTreeOps(b *testing.B) {
	build := func(n int) *core.Tree {
		tr := core.NewTree()
		parent := core.Genesis()
		for i := 0; i < n; i++ {
			blk := core.NewBlock(parent.ID, parent.Height+1, 0, i, []byte{byte(i)})
			if err := tr.Attach(blk); err != nil {
				b.Fatal(err)
			}
			if i%3 != 0 {
				parent = blk
			}
		}
		return tr
	}
	tr := build(1000)
	b.Run("attach", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			build(100)
		}
	})
	b.Run("select-longest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.LongestChain{}.Select(tr)
		}
	})
	b.Run("select-ghost", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GHOST{}.Select(tr)
		}
	})
}
